package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
	"coherentleak/internal/service"
)

// newTestServer starts a Service behind httptest. Cleanup drains the
// service first (so SSE handlers exit) and then closes the listener.
func newTestServer(t *testing.T, opts service.Options) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
		ts.Close()
	})
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, service.View, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.View
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, v, resp.Header
}

func getJob(t *testing.T, ts *httptest.Server, id string) service.View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var v service.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitState polls until the job reaches one of the wanted states,
// failing fast if it lands in an unexpected terminal state.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...service.State) service.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, ts, id)
		for _, w := range want {
			if v.State == w {
				return v
			}
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want one of %v", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for job %s to reach %v (now %s)", id, want, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetch(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// blockingRegistry registers "block": cells that wait on release, plus
// "echo": instant deterministic cells.
func blockingRegistry(cells int, release <-chan struct{}) *harness.Registry {
	reg := harness.NewRegistry()
	reg.MustRegister(&harness.Artifact{
		Name: "block", Description: "cells block until released", File: "block.tsv", Header: "cell\tv",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			out := make([]harness.Cell, cells)
			for i := range out {
				out[i] = harness.Cell{Name: fmt.Sprintf("c%d", i), Run: func() (harness.CellOutput, error) {
					<-release
					return harness.CellOutput{Rows: []string{fmt.Sprintf("c%d\t%d", i, i)}}, nil
				}}
			}
			return out, nil
		},
	})
	reg.MustRegister(&harness.Artifact{
		Name: "echo", Description: "instant cells", File: "echo.tsv", Header: "cell\tv",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			out := make([]harness.Cell, 3)
			for i := range out {
				out[i] = harness.Cell{Name: fmt.Sprintf("e%d", i), Run: func() (harness.CellOutput, error) {
					time.Sleep(2 * time.Millisecond)
					return harness.CellOutput{Rows: []string{fmt.Sprintf("e%d\t%d", i, i*i)}}, nil
				}}
			}
			return out, nil
		},
	})
	return reg
}

// TestJobLifecycleCachedRerunMatchesCLI is the PR's end-to-end
// acceptance: submit the quick table1 job twice over HTTP; the second
// is served entirely from the shared manifest cache, and both TSV
// downloads are byte-identical to what cmd/experiments writes for the
// same plan.
func TestJobLifecycleCachedRerunMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, service.Options{
		Registry:    experiments.Artifacts(),
		DefaultSeed: experiments.DefaultSeed,
	})

	// What cmd/experiments would write: the same Runner, same plan,
	// same TSV renderer the TSVSink persists.
	arts, err := experiments.Artifacts().Select([]string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	cliRunner := &harness.Runner{Parallel: 2}
	cliRep, err := cliRunner.Run(context.Background(), harness.Plan{
		Cfg:    machine.DefaultConfig(),
		Seed:   experiments.DefaultSeed,
		Sizing: harness.SizingQuick,
	}, arts)
	if err != nil {
		t.Fatal(err)
	}
	wantTSV := cliRep.Results[0].TSV()

	body := `{"artifacts":["table1"],"sizing":"quick"}`
	status, v1, _ := postJob(t, ts, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	done1 := waitState(t, ts, v1.ID, service.StateDone)
	if done1.Cells.Executed != done1.Cells.Total || done1.Cells.Cached != 0 {
		t.Fatalf("first run should execute all cells: %+v", done1.Cells)
	}

	status, v2, _ := postJob(t, ts, body)
	if status != http.StatusAccepted {
		t.Fatalf("second submit status = %d", status)
	}
	done2 := waitState(t, ts, v2.ID, service.StateDone)
	if done2.Cells.Cached != done2.Cells.Total || done2.Cells.Executed != 0 {
		t.Fatalf("second run should be fully cached: %+v", done2.Cells)
	}

	code1, tsv1 := fetch(t, ts, "/v1/jobs/"+v1.ID+"/artifacts/table1.tsv")
	code2, tsv2 := fetch(t, ts, "/v1/jobs/"+v2.ID+"/artifacts/table1.tsv")
	if code1 != 200 || code2 != 200 {
		t.Fatalf("download status = %d, %d", code1, code2)
	}
	if !bytes.Equal(tsv1, tsv2) {
		t.Fatal("cached rerun TSV differs from cold run")
	}
	if !bytes.Equal(tsv1, wantTSV) {
		t.Fatalf("service TSV differs from cmd/experiments output:\n--- service ---\n%s--- cli ---\n%s", tsv1, wantTSV)
	}

	// The replay JSON download parses and carries provenance.
	code, js := fetch(t, ts, "/v1/jobs/"+v2.ID+"/artifacts/table1.json")
	if code != 200 {
		t.Fatalf("json download status = %d", code)
	}
	var rec struct {
		Artifact string `json:"artifact"`
		Sizing   string `json:"sizing"`
		Cells    []struct {
			Cached bool `json:"cached"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(js, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Artifact != "table1" || rec.Sizing != "quick" || len(rec.Cells) == 0 || !rec.Cells[0].Cached {
		t.Fatalf("replay record wrong: %+v", rec)
	}
}

// TestArtifactListing pins the registry endpoint shape.
func TestArtifactListing(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Registry: experiments.Artifacts()})
	code, body := fetch(t, ts, "/v1/artifacts")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var out struct {
		Artifacts []struct {
			Name       string `json:"name"`
			File       string `json:"file"`
			QuickCells int    `json:"quickCells"`
		} `json:"artifacts"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Artifacts) != 14 {
		t.Fatalf("artifact count = %d, want 14", len(out.Artifacts))
	}
	byName := map[string]int{}
	for _, a := range out.Artifacts {
		byName[a.Name] = a.QuickCells
	}
	if byName["fig2"] < 4 || byName["table1"] != 1 {
		t.Fatalf("cell counts wrong: %v", byName)
	}
}

// TestSSEStreamsProgress subscribes while the job runs and checks the
// stream carries per-cell events and ends on the terminal state event.
func TestSSEStreamsProgress(t *testing.T) {
	release := make(chan struct{})
	close(release) // echo doesn't need the gate
	_, ts := newTestServer(t, service.Options{Registry: blockingRegistry(2, release), CellParallel: 1})

	status, v, _ := postJob(t, ts, `{"artifacts":["echo"]}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var cellEvents, stateEvents int
	var sawTerminal bool
	scanner := bufio.NewScanner(resp.Body)
	var event, data string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "": // dispatch
			switch event {
			case "cell":
				cellEvents++
			case "state":
				stateEvents++
				var ev service.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatal(err)
				}
				if ev.State.Terminal() {
					sawTerminal = true
					if ev.State != service.StateDone {
						t.Fatalf("terminal state = %s (%s)", ev.State, ev.Error)
					}
				}
			}
		}
	}
	// The server closes the stream after the terminal event, so Scan
	// terminating at all means the lifecycle completed.
	if cellEvents != 3 {
		t.Fatalf("cell events = %d, want 3", cellEvents)
	}
	if stateEvents < 2 || !sawTerminal {
		t.Fatalf("state events = %d, terminal seen = %v", stateEvents, sawTerminal)
	}
}

// TestQueueFullReturns429 fills the bounded queue and checks admission
// control: 429, a Retry-After hint, and a rejection metric.
func TestQueueFullReturns429(t *testing.T) {
	release := make(chan struct{})
	svc, ts := newTestServer(t, service.Options{
		Registry:     blockingRegistry(1, release),
		QueueDepth:   1,
		Executors:    1,
		CellParallel: 1,
	})

	// First job occupies the executor, second fills the 1-deep queue.
	status, v1, _ := postJob(t, ts, `{"artifacts":["block"]}`)
	if status != http.StatusAccepted {
		t.Fatalf("first submit = %d", status)
	}
	waitState(t, ts, v1.ID, service.StateRunning)
	status, v2, _ := postJob(t, ts, `{"artifacts":["block"]}`)
	if status != http.StatusAccepted {
		t.Fatalf("second submit = %d", status)
	}

	status, _, hdr := postJob(t, ts, `{"artifacts":["block"]}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", status)
	}
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	waitState(t, ts, v1.ID, service.StateDone)
	waitState(t, ts, v2.ID, service.StateDone)

	code, metrics := fetch(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		"cohsimd_jobs_rejected_total 1",
		`cohsimd_jobs_finished_total{state="done"} 2`,
		`cohsimd_cell_seconds_count{artifact="block"} 2`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	_ = svc
}

// TestCancelMidRunAndWhileQueued covers both cancellation paths.
func TestCancelMidRunAndWhileQueued(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, service.Options{
		Registry:     blockingRegistry(4, release),
		QueueDepth:   4,
		Executors:    1,
		CellParallel: 1,
	})

	status, running, _ := postJob(t, ts, `{"artifacts":["block"]}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	waitState(t, ts, running.ID, service.StateRunning)
	status, queued, _ := postJob(t, ts, `{"artifacts":["block"]}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}

	// Cancel the queued job: immediate, executor must skip it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := getJob(t, ts, queued.ID); v.State != service.StateCancelled {
		t.Fatalf("queued job after cancel = %s", v.State)
	}

	// Cancel the running job mid-run, then release its blocked cell.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(release)
	v := waitState(t, ts, running.ID, service.StateCancelled)
	if !strings.Contains(v.Error, "cancel") {
		t.Fatalf("cancelled error = %q", v.Error)
	}
	if v.Cells.Done == 0 {
		t.Fatal("no cell reports recorded for the partially run job")
	}
}

// TestGracefulShutdownDrains: in-flight jobs finish, queued jobs are
// shed, late submissions see 503, and the manifest persists atomically.
func TestGracefulShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "manifest.json")
	release := make(chan struct{})
	svc, ts := newTestServer(t, service.Options{
		Registry:     blockingRegistry(1, release),
		QueueDepth:   4,
		Executors:    1,
		CellParallel: 1,
		ManifestPath: manifestPath,
	})

	status, inflight, _ := postJob(t, ts, `{"artifacts":["block"]}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	waitState(t, ts, inflight.ID, service.StateRunning)
	status, shed, _ := postJob(t, ts, `{"artifacts":["block"]}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		done <- svc.Shutdown(ctx)
	}()
	// Draining: health turns 503 and submissions are refused.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ := fetch(t, ts, "/healthz")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if status, _, _ := postJob(t, ts, `{"artifacts":["echo"]}`); status != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", status)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if v := getJob(t, ts, inflight.ID); v.State != service.StateDone {
		t.Fatalf("in-flight job drained to %s, want done", v.State)
	}
	if v := getJob(t, ts, shed.ID); v.State != service.StateCancelled {
		t.Fatalf("queued job on shutdown = %s, want cancelled", v.State)
	}

	m, err := harness.LoadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() == 0 {
		t.Fatal("manifest not persisted on shutdown")
	}
}

// TestBadRequests pins the 400/404 surfaces.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Registry: experiments.Artifacts()})
	for _, tc := range []struct {
		body string
		want string
	}{
		{`{"artifacts":["nope"]}`, "unknown artifact"},
		{`{"sizing":"medium"}`, "sizing"},
		{`{"timeoutSeconds":-1}`, "timeoutSeconds"},
		{`{"config":{"Bogus":1}}`, "config overrides"},
		{`{"config":{"Sockets":0}}`, "config overrides"},
		{`{"bogusField":1}`, "request body"},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), tc.want) {
			t.Fatalf("body %s: status %d, response %s (want 400 mentioning %q)", tc.body, resp.StatusCode, buf.String(), tc.want)
		}
	}
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/events", "/v1/jobs/job-999999/artifacts/table1.tsv"} {
		code, _ := fetch(t, ts, path)
		if code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, code)
		}
	}
}

// TestConfigOverridesChangeDigest submits a job with a machine-config
// override and checks it runs under a different config digest (so the
// cache cannot alias across configurations).
func TestConfigOverridesChangeDigest(t *testing.T) {
	_, ts := newTestServer(t, service.Options{
		Registry:    experiments.Artifacts(),
		DefaultSeed: experiments.DefaultSeed,
	})
	_, base, _ := postJob(t, ts, `{"artifacts":["table1"],"sizing":"quick"}`)
	_, tweaked, _ := postJob(t, ts, `{"artifacts":["table1"],"sizing":"quick","config":{"Sockets":4}}`)
	b := waitState(t, ts, base.ID, service.StateDone)
	tw := waitState(t, ts, tweaked.ID, service.StateDone)
	if b.ConfigDigest == tw.ConfigDigest {
		t.Fatal("override did not change the config digest")
	}
	if tw.Cells.Cached != 0 {
		t.Fatalf("tweaked config served from base cache: %+v", tw.Cells)
	}
}

// TestProtocolListingAndOverride exercises the protocol registry over
// HTTP: GET /v1/protocols names every registered protocol, a job's
// config override can select one by name, and an unknown name is
// rejected at submission with the valid names in the error.
func TestProtocolListingAndOverride(t *testing.T) {
	_, ts := newTestServer(t, service.Options{
		Registry:    experiments.Artifacts(),
		DefaultSeed: experiments.DefaultSeed,
	})

	code, body := fetch(t, ts, "/v1/protocols")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/protocols = %d: %s", code, body)
	}
	var listing struct {
		Protocols []struct {
			Name           string `json:"name"`
			SilentUpgrades bool   `json:"silentUpgrades"`
			Default        bool   `json:"default"`
		} `json:"protocols"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	var def string
	for _, p := range listing.Protocols {
		got[p.Name] = p.SilentUpgrades
		if p.Default {
			def = p.Name
		}
	}
	for _, want := range []string{"MESI", "MESIF", "MOESI", "DRAGON", "WT-NA"} {
		if _, ok := got[want]; !ok {
			t.Errorf("listing missing protocol %s", want)
		}
	}
	if def != "MESIF" {
		t.Errorf("default protocol = %q, want MESIF", def)
	}
	if got["WT-NA"] || !got["MESIF"] {
		t.Errorf("silentUpgrades wrong: %v", got)
	}

	// A job can select any registered protocol by name.
	_, job, _ := postJob(t, ts, `{"artifacts":["table1"],"sizing":"quick","config":{"Protocol":"MOESI"}}`)
	waitState(t, ts, job.ID, service.StateDone)

	// Unknown protocols are rejected at submission, naming the options.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"artifacts":["table1"],"config":{"Protocol":"MESIFY"}}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), "MESIFY") || !strings.Contains(buf.String(), "DRAGON") {
		t.Fatalf("unknown protocol: status %d, body %s (want 400 naming the registered protocols)", resp.StatusCode, buf.String())
	}
}

// TestReplacementListingAndOverride mirrors the protocol test for the
// replacement-policy registry: GET /v1/replacements names every policy,
// a job's config override can select one, and an unknown name is a 400
// at submission.
func TestReplacementListingAndOverride(t *testing.T) {
	_, ts := newTestServer(t, service.Options{
		Registry:    experiments.Artifacts(),
		DefaultSeed: experiments.DefaultSeed,
	})

	code, body := fetch(t, ts, "/v1/replacements")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/replacements = %d: %s", code, body)
	}
	var listing struct {
		Replacements []struct {
			Name    string `json:"name"`
			Default bool   `json:"default"`
		} `json:"replacements"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, p := range listing.Replacements {
		got[p.Name] = p.Default
	}
	for _, want := range []string{"LRU", "tree-PLRU", "SRRIP", "BRRIP"} {
		if _, ok := got[want]; !ok {
			t.Errorf("listing missing policy %s", want)
		}
	}
	if !got["LRU"] || got["SRRIP"] {
		t.Errorf("default flag wrong: %v", got)
	}

	// A job can select any registered policy by name (case-insensitive).
	_, job, _ := postJob(t, ts, `{"artifacts":["table1"],"sizing":"quick","config":{"Replacement":"srrip"}}`)
	waitState(t, ts, job.ID, service.StateDone)

	// Unknown policies are rejected at submission, naming the options.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"artifacts":["table1"],"config":{"Replacement":"MRU"}}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), "MRU") || !strings.Contains(buf.String(), "SRRIP") {
		t.Fatalf("unknown policy: status %d, body %s (want 400 naming the registered policies)", resp.StatusCode, buf.String())
	}
}
