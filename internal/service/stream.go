package service

// eventLog is the shared publish/subscribe core behind job and sweep
// progress streams: an append-only event history (replayed to late
// subscribers), a set of live subscriber channels, and the slow-
// subscriber policy — a subscriber whose buffer is full has stalled
// and is closed and dropped so it can never block a publisher. All
// methods are called under the owning Service's lock.
type eventLog[E any] struct {
	buffer  int
	events  []E
	subs    map[int]chan E
	nextSub int
	// onEvict counts dropped slow subscribers; nil discards.
	onEvict func()
}

func newEventLog[E any](buffer int, onEvict func()) *eventLog[E] {
	return &eventLog[E]{
		buffer:  buffer,
		subs:    make(map[int]chan E),
		onEvict: onEvict,
	}
}

// seq returns the sequence number the next published event will carry:
// events are numbered by history position.
func (l *eventLog[E]) seq() int { return len(l.events) }

// history returns a copy of everything published so far.
func (l *eventLog[E]) history() []E { return append([]E(nil), l.events...) }

// publish appends ev and fans it out. When terminal is set this is the
// stream's last event: every subscriber is closed after delivery.
func (l *eventLog[E]) publish(ev E, terminal bool) {
	l.events = append(l.events, ev)
	for id, ch := range l.subs {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(l.subs, id)
			if l.onEvict != nil {
				l.onEvict()
			}
		}
	}
	if terminal {
		for id, ch := range l.subs {
			close(ch)
			delete(l.subs, id)
		}
	}
}

// subscribe returns the history so far plus a live channel — nil when
// the stream has already ended (the caller passes done).
func (l *eventLog[E]) subscribe(done bool) (history []E, ch chan E, id int) {
	history = l.history()
	if done {
		return history, nil, 0
	}
	ch = make(chan E, l.buffer)
	id = l.nextSub
	l.nextSub++
	l.subs[id] = ch
	return history, ch, id
}

// unsubscribe detaches a live subscriber.
func (l *eventLog[E]) unsubscribe(id int) {
	if ch, ok := l.subs[id]; ok {
		close(ch)
		delete(l.subs, id)
	}
}
