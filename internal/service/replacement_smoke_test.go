package service_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
	"coherentleak/internal/service"
)

// TestReplacementSmokeGolden is the CI smoke gate for the replacement
// layer (make replacement-smoke): the lrustate and dirtystate quick
// artifacts run through the daemon with a worker fleet attached and a
// tree-PLRU base-config override, must be byte-identical to a serial
// in-process run of the same plan, and must match the checked-in golden
// TSVs. The goldens pin the channels' survival surface: lrustate decodes
// perfectly under LRU/tree-PLRU and collapses under SRRIP/BRRIP, while
// dirtystate decodes perfectly under every policy. Run with
// -update-golden to regenerate after an intentional simulator change.
func TestReplacementSmokeGolden(t *testing.T) {
	reg := experiments.Artifacts()
	_, ts := newTestServer(t, service.Options{Registry: reg, DefaultSeed: experiments.DefaultSeed})
	for i := 0; i < 2; i++ {
		kill := attachWorker(t, ts, fmt.Sprintf("rs%d", i), reg)
		defer kill()
	}
	waitWorkers(t, ts, 2)

	status, job, raw := postJob(t, ts, `{
		"artifacts": ["lrustate", "dirtystate"],
		"sizing": "quick",
		"config": {"Replacement": "tree-plru"}
	}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", status, raw)
	}
	waitState(t, ts, job.ID, service.StateDone)

	// The serial reference run of the identical plan.
	arts, err := reg.Select([]string{"lrustate", "dirtystate"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Replacement = "tree-plru"
	r := &harness.Runner{Parallel: 1}
	rep, err := r.Run(context.Background(), harness.Plan{
		Cfg: cfg, Seed: experiments.DefaultSeed, Sizing: harness.SizingQuick,
	}, arts)
	if err != nil {
		t.Fatal(err)
	}

	for i, name := range []string{"lrustate", "dirtystate"} {
		code, tsv := fetch(t, ts, "/v1/jobs/"+job.ID+"/artifacts/"+name+".tsv")
		if code != http.StatusOK {
			t.Fatalf("download %s = %d", name, code)
		}
		if want := rep.Results[i].TSV(); !bytes.Equal(tsv, want) {
			t.Fatalf("fleet %s TSV differs from serial run:\n got: %q\nwant: %q", name, tsv, want)
		}
		golden := filepath.Join("testdata", "replacement_smoke_"+name+".tsv")
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, tsv, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s", golden)
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run go test -run TestReplacementSmokeGolden -update-golden): %v", err)
		}
		if !bytes.Equal(tsv, want) {
			t.Errorf("%s drifted from golden %s:\ngot:\n%s\nwant:\n%s", name, golden, tsv, want)
		}
	}
}
