package service

import (
	"strings"
	"testing"
)

// TestTenantMetricsSeries pins the per-tenant Prometheus exposition:
// admissions, 429s split by reason, cell outcomes and the lane-depth
// gauge all render one series per tenant, sorted by tenant name.
func TestTenantMetricsSeries(t *testing.T) {
	m := NewMetrics()
	m.TenantJobAccepted("alice")
	m.TenantJobAccepted("alice")
	m.TenantJobAccepted("bob")
	m.TenantJobRejected("alice", "quota")
	m.TenantJobRejected("bob", "queue-full")
	m.TenantCell("alice", false, false) // executed
	m.TenantCell("alice", true, false)  // cached
	m.TenantCell("bob", false, true)    // failed

	var sb strings.Builder
	m.WriteTo(&sb, Gauges{TenantQueueDepth: map[string]int{"alice": 3, "bob": 0}})
	out := sb.String()

	for _, want := range []string{
		`cohsimd_tenant_jobs_accepted_total{tenant="alice"} 2`,
		`cohsimd_tenant_jobs_accepted_total{tenant="bob"} 1`,
		`cohsimd_tenant_jobs_rejected_total{tenant="alice",reason="quota"} 1`,
		`cohsimd_tenant_jobs_rejected_total{tenant="alice",reason="queue-full"} 0`,
		`cohsimd_tenant_jobs_rejected_total{tenant="bob",reason="queue-full"} 1`,
		`cohsimd_tenant_cells_total{tenant="alice",outcome="executed"} 1`,
		`cohsimd_tenant_cells_total{tenant="alice",outcome="cached"} 1`,
		`cohsimd_tenant_cells_total{tenant="bob",outcome="failed"} 1`,
		`cohsimd_tenant_queue_depth{tenant="alice"} 3`,
		`cohsimd_tenant_queue_depth{tenant="bob"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Deterministic ordering: alice's series render before bob's.
	if strings.Index(out, `accepted_total{tenant="alice"}`) > strings.Index(out, `accepted_total{tenant="bob"}`) {
		t.Error("tenant series are not sorted by name")
	}
	// A tenant known only to the gauges still gets counter series (all
	// zero), so dashboards never see partial label sets.
	var sb2 strings.Builder
	m.WriteTo(&sb2, Gauges{TenantQueueDepth: map[string]int{"carol": 1}})
	if !strings.Contains(sb2.String(), `cohsimd_tenant_jobs_accepted_total{tenant="carol"} 0`) {
		t.Error("gauge-only tenant missing from counter series")
	}
}
