package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
	"coherentleak/internal/service"
	"coherentleak/internal/store"
	"coherentleak/internal/tenant"
)

const (
	aliceKey = "alice-key-123456"
	bobKey   = "bob-key-1234567"
)

// twoTenants builds a registry with alice (maxInFlight 2) and bob
// (unbounded).
func twoTenants(t *testing.T) *tenant.Registry {
	t.Helper()
	reg, err := tenant.New([]*tenant.Tenant{
		{Name: "alice", Key: aliceKey, Quotas: tenant.Quotas{MaxInFlight: 2}},
		{Name: "bob", Key: bobKey},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// doAs issues a request with a tenant's bearer key ("" sends no
// Authorization header).
func doAs(t *testing.T, ts *httptest.Server, key, method, path, body string) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// waitStateAs polls a job as one tenant until it reaches a wanted state.
func waitStateAs(t *testing.T, ts *httptest.Server, key, id string, want ...service.State) service.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body, _ := doAs(t, ts, key, "GET", "/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		var v service.View
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if v.State == w {
				return v
			}
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want one of %v", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for job %s to reach %v (now %s)", id, want, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSharedDiskStoreAcrossReplicas is the tentpole acceptance: two
// service replicas pointed at one -store-dir share the cell cache.
// Replica 2's first run of a job replica 1 already executed is served
// entirely from disk, and both TSVs are byte-identical to a serial
// cmd/experiments-style run.
func TestSharedDiskStoreAcrossReplicas(t *testing.T) {
	dir := t.TempDir()
	disk1, err := store.NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	disk2, err := store.NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, service.Options{
		Registry: experiments.Artifacts(), DefaultSeed: experiments.DefaultSeed, Store: disk1,
	})
	_, ts2 := newTestServer(t, service.Options{
		Registry: experiments.Artifacts(), DefaultSeed: experiments.DefaultSeed, Store: disk2,
	})

	arts, err := experiments.Artifacts().Select([]string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	serial := &harness.Runner{Parallel: 1}
	rep, err := serial.Run(t.Context(), harness.Plan{
		Cfg: machine.DefaultConfig(), Seed: experiments.DefaultSeed, Sizing: harness.SizingQuick,
	}, arts)
	if err != nil {
		t.Fatal(err)
	}
	wantTSV := rep.Results[0].TSV()

	body := `{"artifacts":["table1"],"sizing":"quick"}`
	status, v1, _ := postJob(t, ts1, body)
	if status != http.StatusAccepted {
		t.Fatalf("replica 1 submit = %d", status)
	}
	done1 := waitState(t, ts1, v1.ID, service.StateDone)
	if done1.Cells.Executed != done1.Cells.Total {
		t.Fatalf("replica 1 cold run should execute all cells: %+v", done1.Cells)
	}

	status, v2, _ := postJob(t, ts2, body)
	if status != http.StatusAccepted {
		t.Fatalf("replica 2 submit = %d", status)
	}
	done2 := waitState(t, ts2, v2.ID, service.StateDone)
	if done2.Cells.Cached != done2.Cells.Total || done2.Cells.Executed != 0 {
		t.Fatalf("replica 2 should be served fully from the shared store: %+v", done2.Cells)
	}

	_, tsv1 := fetch(t, ts1, "/v1/jobs/"+v1.ID+"/artifacts/table1.tsv")
	_, tsv2 := fetch(t, ts2, "/v1/jobs/"+v2.ID+"/artifacts/table1.tsv")
	if !bytes.Equal(tsv1, tsv2) {
		t.Fatal("replica TSVs differ")
	}
	if !bytes.Equal(tsv2, wantTSV) {
		t.Fatalf("shared-store TSV differs from the serial run:\n--- replica ---\n%s--- serial ---\n%s", tsv2, wantTSV)
	}
}

// TestAuthRequiredAndExemptRoutes: with a keys file loaded, job routes
// demand a bearer key while the infrastructure surface stays open.
func TestAuthRequiredAndExemptRoutes(t *testing.T) {
	release := make(chan struct{})
	close(release)
	// Dispatch stays enabled so the worker-fleet surface mounts: the
	// exempt-route check below covers /v1/workers.
	_, ts := newTestServer(t, service.Options{
		Registry: blockingRegistry(1, release), Tenants: twoTenants(t),
	})

	code, _, hdr := doAs(t, ts, "", "POST", "/v1/jobs", `{"artifacts":["echo"]}`)
	if code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated submit = %d, want 401", code)
	}
	if hdr.Get("WWW-Authenticate") == "" {
		t.Fatal("401 must carry WWW-Authenticate")
	}
	if code, _, _ := doAs(t, ts, "wrong-key-123456", "GET", "/v1/jobs", ""); code != http.StatusUnauthorized {
		t.Fatalf("bad-key list = %d, want 401", code)
	}
	for _, path := range []string{"/healthz", "/metrics", "/v1/version", "/v1/artifacts", "/v1/protocols", "/v1/replacements", "/v1/workers"} {
		if code, body, _ := doAs(t, ts, "", "GET", path, ""); code != http.StatusOK {
			t.Fatalf("exempt route %s = %d (%s), want 200", path, code, body)
		}
	}
	if code, _, _ := doAs(t, ts, aliceKey, "POST", "/v1/jobs", `{"artifacts":["echo"]}`); code != http.StatusAccepted {
		t.Fatalf("authenticated submit = %d, want 202", code)
	}
}

// TestTenantOwnership: a tenant's jobs are invisible to other tenants —
// GET, DELETE, events, downloads and listings all report not-found.
func TestTenantOwnership(t *testing.T) {
	release := make(chan struct{})
	close(release)
	_, ts := newTestServer(t, service.Options{
		Registry: blockingRegistry(1, release), Tenants: twoTenants(t), DisableDispatch: true,
	})

	code, body, _ := doAs(t, ts, aliceKey, "POST", "/v1/jobs", `{"artifacts":["echo"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	var v service.View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "alice" {
		t.Fatalf("job tenant = %q, want alice", v.Tenant)
	}
	waitStateAs(t, ts, aliceKey, v.ID, service.StateDone)

	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/" + v.ID},
		{"DELETE", "/v1/jobs/" + v.ID},
		{"GET", "/v1/jobs/" + v.ID + "/events"},
		{"GET", "/v1/jobs/" + v.ID + "/artifacts/echo.tsv"},
	} {
		if code, _, _ := doAs(t, ts, bobKey, probe.method, probe.path, ""); code != http.StatusNotFound {
			t.Fatalf("bob %s %s = %d, want 404", probe.method, probe.path, code)
		}
	}
	if code, _, _ := doAs(t, ts, aliceKey, "GET", "/v1/jobs/"+v.ID, ""); code != http.StatusOK {
		t.Fatal("alice cannot see her own job")
	}

	var list struct {
		Jobs []service.View `json:"jobs"`
	}
	_, body, _ = doAs(t, ts, bobKey, "GET", "/v1/jobs", "")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("bob's listing shows %d job(s), want 0", len(list.Jobs))
	}
	_, body, _ = doAs(t, ts, aliceKey, "GET", "/v1/jobs", "")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 {
		t.Fatalf("alice's listing shows %d job(s), want 1", len(list.Jobs))
	}
}

// TestTenantQuotaAnd429Body: alice's third in-flight job is rejected
// with her quota, a per-tenant Retry-After, and a body carrying her
// own queue depth — while bob is unaffected. /v1/tenants/self mirrors
// the live usage.
func TestTenantQuotaAnd429Body(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, service.Options{
		Registry: blockingRegistry(1, release), Tenants: twoTenants(t),
		QueueDepth: 8, DisableDispatch: true,
	})
	defer close(release)

	submit := func(key string) (int, []byte, http.Header) {
		return doAs(t, ts, key, "POST", "/v1/jobs", `{"artifacts":["block"]}`)
	}
	for i := 0; i < 2; i++ {
		if code, body, _ := submit(aliceKey); code != http.StatusAccepted {
			t.Fatalf("alice submit %d = %d (%s)", i, code, body)
		}
	}
	code, body, hdr := submit(aliceKey)
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice over-quota submit = %d (%s), want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("quota 429 must carry Retry-After")
	}
	var adm struct {
		Error             string `json:"error"`
		Tenant            string `json:"tenant"`
		QueueDepth        int    `json:"queueDepth"`
		RetryAfterSeconds int    `json:"retryAfterSeconds"`
	}
	if err := json.Unmarshal(body, &adm); err != nil {
		t.Fatal(err)
	}
	if adm.Tenant != "alice" || adm.RetryAfterSeconds < 1 {
		t.Fatalf("429 body = %+v", adm)
	}
	if !strings.Contains(adm.Error, "quota") {
		t.Fatalf("429 error %q should name the quota", adm.Error)
	}
	// One of alice's two jobs is running, the other queued: her depth
	// in the 429 body is her own lane's, not the global queue's.
	if adm.QueueDepth != 1 {
		t.Fatalf("429 queueDepth = %d, want alice's own backlog of 1", adm.QueueDepth)
	}

	if code, body, _ := submit(bobKey); code != http.StatusAccepted {
		t.Fatalf("bob blocked by alice's quota: %d (%s)", code, body)
	}

	code, body, _ = doAs(t, ts, aliceKey, "GET", "/v1/tenants/self", "")
	if code != http.StatusOK {
		t.Fatalf("tenants/self = %d", code)
	}
	var self service.TenantSelfView
	if err := json.Unmarshal(body, &self); err != nil {
		t.Fatal(err)
	}
	if self.Name != "alice" || !self.AuthEnabled || self.Quotas.MaxInFlight != 2 {
		t.Fatalf("self = %+v", self)
	}
	if got := self.Usage.JobsQueued + self.Usage.JobsRunning; got != 2 {
		t.Fatalf("alice's live usage = %+v, want 2 jobs in flight", self.Usage)
	}

	// The per-tenant series render on /metrics.
	_, body, _ = doAs(t, ts, "", "GET", "/metrics", "")
	for _, want := range []string{
		`cohsimd_tenant_jobs_accepted_total{tenant="alice"} 2`,
		`cohsimd_tenant_jobs_rejected_total{tenant="alice",reason="quota"} 1`,
		`cohsimd_tenant_jobs_accepted_total{tenant="bob"} 1`,
		`cohsimd_tenant_queue_depth{tenant="alice"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestFairQueueServesLightTenantEarly: bob's single job, submitted
// behind alice's backlog, runs before alice's later jobs — the fair
// queue prevents head-of-line blocking at the service level.
func TestFairQueueServesLightTenantEarly(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, service.Options{
		Registry: blockingRegistry(1, release),
		Tenants: func() *tenant.Registry {
			reg, err := tenant.New([]*tenant.Tenant{
				{Name: "alice", Key: aliceKey},
				{Name: "bob", Key: bobKey},
			})
			if err != nil {
				t.Fatal(err)
			}
			return reg
		}(),
		QueueDepth: 16, Executors: 1, DisableDispatch: true,
	})

	// The first job occupies the lone executor until release closes;
	// alice then piles up a backlog before bob submits one job.
	submit := func(key, artifact string) service.View {
		code, body, _ := doAs(t, ts, key, "POST", "/v1/jobs", `{"artifacts":["`+artifact+`"]}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit = %d (%s)", code, body)
		}
		var v service.View
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	submit(aliceKey, "block")
	var aliceEchoes []service.View
	for i := 0; i < 3; i++ {
		aliceEchoes = append(aliceEchoes, submit(aliceKey, "echo"))
	}
	bobJob := submit(bobKey, "echo")
	close(release)

	bobDone := waitStateAs(t, ts, bobKey, bobJob.ID, service.StateDone)
	lastAlice := waitStateAs(t, ts, aliceKey, aliceEchoes[2].ID, service.StateDone)
	if bobDone.Started == nil || lastAlice.Started == nil {
		t.Fatal("missing start timestamps")
	}
	if !bobDone.Started.Before(*lastAlice.Started) {
		t.Fatalf("bob's single job started %s, after alice's 4th job at %s — head-of-line blocked",
			bobDone.Started, lastAlice.Started)
	}
}
