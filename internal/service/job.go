package service

import (
	"context"
	"time"

	"coherentleak/internal/harness"
)

// State is a job's lifecycle stage.
type State string

const (
	// StateQueued means the job is admitted and waiting for an executor.
	StateQueued State = "queued"
	// StateRunning means an executor is driving the job's Runner.
	StateRunning State = "running"
	// StateDone means every cell succeeded and results are downloadable.
	StateDone State = "done"
	// StateFailed means the run finished with cell failures, a timeout,
	// or an engine error; partial results may still be downloadable.
	StateFailed State = "failed"
	// StateCancelled means the client (or a shutdown) cancelled the job.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry in a job's progress stream. Events are sequenced
// per job and replayed verbatim to late SSE subscribers, so a client
// that connects after completion still sees the full history.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state" or "cell"
	// State is set on "state" events.
	State State `json:"state,omitempty"`
	// Error carries the failure reason on terminal "state" events.
	Error string `json:"error,omitempty"`
	// Cell is set on "cell" events.
	Cell *CellEvent `json:"cell,omitempty"`
}

// CellEvent reports one finished cell, mirroring harness.CellReport.
type CellEvent struct {
	Artifact string `json:"artifact"`
	Cell     string `json:"cell"`
	Index    int    `json:"index"`
	Cached   bool   `json:"cached"`
	// Worker names the fleet worker that executed the cell; empty for
	// in-process execution and cache hits.
	Worker     string  `json:"worker,omitempty"`
	WallMillis float64 `json:"wallMillis"`
	Rows       int     `json:"rows"`
	Error      string  `json:"error,omitempty"`
	Done       int     `json:"done"`
	Total      int     `json:"total"`
}

// subEventBuffer bounds a subscriber's unread backlog. A full paper
// sweep emits well under a hundred events, so a subscriber only
// overflows if its connection has stalled completely — then it is
// dropped rather than allowed to stall the executor.
const subEventBuffer = 512

// Job is one admitted experiment run.
type Job struct {
	// Immutable after Submit.
	ID string
	// Tenant names the owning tenant; only that tenant's requests can
	// see or cancel the job ("anonymous" when auth is disabled).
	Tenant    string
	Artifacts []string
	Plan      harness.Plan
	Timeout   time.Duration
	Created   time.Time

	cancel context.CancelCauseFunc

	// Mutable state, guarded by the owning Service's mu (jobs are few
	// and events short; one lock keeps ordering between state changes
	// and event publication trivial).
	state    State
	started  time.Time
	finished time.Time
	errMsg   string
	total    int
	done     int
	executed int
	cached   int
	failed   int
	report   *harness.RunReport
	results  map[string]*harness.ArtifactResult
	stream   *eventLog[Event]
}

// CellsView summarizes per-cell progress counters.
type CellsView struct {
	Total    int `json:"total"`
	Done     int `json:"done"`
	Executed int `json:"executed"`
	Cached   int `json:"cached"`
	Failed   int `json:"failed"`
}

// ArtifactView names one downloadable result.
type ArtifactView struct {
	Name string `json:"name"`
	File string `json:"file"`
	Rows int    `json:"rows"`
	TSV  string `json:"tsv"`
	JSON string `json:"json"`
}

// View is the JSON representation of a job.
type View struct {
	ID           string         `json:"id"`
	State        State          `json:"state"`
	Tenant       string         `json:"tenant,omitempty"`
	Artifacts    []string       `json:"artifacts"`
	Seed         uint64         `json:"seed"`
	Sizing       string         `json:"sizing"`
	ConfigDigest string         `json:"configDigest"`
	Created      time.Time      `json:"created"`
	Started      *time.Time     `json:"started,omitempty"`
	Finished     *time.Time     `json:"finished,omitempty"`
	WallMillis   float64        `json:"wallMillis,omitempty"`
	Error        string         `json:"error,omitempty"`
	Cells        CellsView      `json:"cells"`
	Results      []ArtifactView `json:"results,omitempty"`
}

// view renders the job under the service lock.
func (j *Job) view() View {
	v := View{
		ID:           j.ID,
		State:        j.state,
		Tenant:       j.Tenant,
		Artifacts:    j.Artifacts,
		Seed:         j.Plan.Seed,
		Sizing:       string(j.Plan.Sizing),
		ConfigDigest: j.Plan.ConfigDigest(),
		Created:      j.Created,
		Error:        j.errMsg,
		Cells: CellsView{
			Total: j.total, Done: j.done,
			Executed: j.executed, Cached: j.cached, Failed: j.failed,
		},
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
		v.WallMillis = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	if j.report != nil {
		for _, res := range j.report.Results {
			v.Results = append(v.Results, ArtifactView{
				Name: res.Artifact.Name,
				File: res.Artifact.File,
				Rows: len(res.Rows),
				TSV:  "/v1/jobs/" + j.ID + "/artifacts/" + res.Artifact.Name + ".tsv",
				JSON: "/v1/jobs/" + j.ID + "/artifacts/" + res.Artifact.Name + ".json",
			})
		}
	}
	return v
}

// publish appends an event and fans it out through the job's stream
// (slow subscribers are evicted there). Caller holds the service lock.
func (j *Job) publish(ev Event) {
	ev.Seq = j.stream.seq()
	j.stream.publish(ev, ev.Type == "state" && ev.State.Terminal())
}

// subscribe returns the event history so far plus a live channel (nil
// if the job is already terminal). Caller holds the service lock.
func (j *Job) subscribe() (history []Event, ch chan Event, id int) {
	return j.stream.subscribe(j.state.Terminal())
}

// unsubscribe detaches a live subscriber. Caller holds the service lock.
func (j *Job) unsubscribe(id int) {
	j.stream.unsubscribe(id)
}
