package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
	"coherentleak/internal/harness"
	"coherentleak/internal/replay"
	"coherentleak/internal/sweep"
	"coherentleak/internal/tenant"
	"coherentleak/internal/version"
)

// Handler builds the daemon's HTTP API:
//
//	GET    /healthz                            liveness (503 while draining)
//	GET    /metrics                            Prometheus text exposition
//	GET    /v1/artifacts                       registry listing with cell counts
//	GET    /v1/protocols                       registered coherence protocols
//	GET    /v1/replacements                    registered replacement policies
//	POST   /v1/jobs                            submit a job (202; 429 when full)
//	GET    /v1/jobs                            list jobs in submission order
//	GET    /v1/jobs/{id}                       one job's state and result links
//	DELETE /v1/jobs/{id}                       cancel (also POST /v1/jobs/{id}/cancel)
//	GET    /v1/jobs/{id}/events                Server-Sent Events progress stream
//	GET    /v1/jobs/{id}/artifacts/{file}      <artifact>.tsv or <artifact>.json
//	GET    /v1/version                         build identity
//	POST   /v1/sweeps                          submit a parameter sweep (202)
//	GET    /v1/sweeps                          list sweeps in submission order
//	GET    /v1/sweeps/{id}                     one sweep's state and frontier
//	DELETE /v1/sweeps/{id}                     cancel (also POST /v1/sweeps/{id}/cancel)
//	GET    /v1/sweeps/{id}/events              SSE per-point progress + frontier updates
//	GET    /v1/sweeps/{id}/frontier.tsv        ranked frontier (deterministic bytes)
//	GET    /v1/tenants/self                    the caller's quota and live usage
//
// When a tenant registry with keys is loaded, every job, sweep and
// tenant route requires "Authorization: Bearer <key>" and each tenant
// sees only its own jobs and sweeps; infrastructure routes (healthz,
// metrics, version, the read-only artifact/protocol listings, and the
// worker-fleet protocol) stay open.
//
// When dispatch is enabled the worker-fleet protocol mounts alongside:
// POST/GET /v1/workers, DELETE /v1/workers/{id}, and the per-worker
// lease / result / heartbeat routes (see internal/dispatch).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/artifacts", s.handleArtifacts)
	mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	mux.HandleFunc("GET /v1/replacements", s.handleReplacements)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{file}", s.handleDownload)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	mux.HandleFunc("POST /v1/sweeps/{id}/cancel", s.handleSweepCancel)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	mux.HandleFunc("GET /v1/sweeps/{id}/frontier.tsv", s.handleSweepFrontier)
	mux.HandleFunc("GET /v1/tenants/self", s.handleTenantSelf)
	if s.fleet != nil {
		s.fleet.Routes(mux)
	}
	return s.withAuth(mux)
}

// tenantKey carries the authenticated tenant in the request context.
type tenantKey struct{}

// withAuth authenticates tenant-scoped requests against the registry
// and stows the caller's tenant in the request context. In anonymous
// mode (no keys file) every request authenticates as the anonymous
// tenant, preserving the open pre-tenant API.
func (s *Service) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		tn, err := s.opts.Tenants.Authenticate(r.Header.Get("Authorization"))
		if err != nil {
			w.Header().Set("WWW-Authenticate", `Bearer realm="cohsimd"`)
			writeJSON(w, http.StatusUnauthorized, apiError{Error: err.Error()})
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tn)))
	})
}

// authExempt lists the infrastructure surface that stays open when
// authentication is on: liveness, metrics scraping, build identity,
// the read-only artifact/protocol listings, and the worker-fleet
// protocol (workers are operator-deployed infrastructure, not
// tenants).
func authExempt(path string) bool {
	switch path {
	case "/healthz", "/metrics", "/v1/version", "/v1/artifacts", "/v1/protocols", "/v1/replacements":
		return true
	}
	return strings.HasPrefix(path, "/v1/workers")
}

// tenantOf returns the request's authenticated tenant. The middleware
// installs it for every non-exempt route; the fallback covers direct
// handler invocations in tests.
func (s *Service) tenantOf(r *http.Request) *tenant.Tenant {
	if tn, ok := r.Context().Value(tenantKey{}).(*tenant.Tenant); ok {
		return tn
	}
	return s.fallbackTenant()
}

type apiError struct {
	Error string `json:"error"`
}

// admissionError is the 429 body: the caller's own queue depth and a
// Retry-After derived from that tenant's backlog, not the global
// queue — under fair queueing another tenant's pile-up says nothing
// about how long this caller must wait.
type admissionError struct {
	Error             string `json:"error"`
	Tenant            string `json:"tenant"`
	QueueDepth        int    `json:"queueDepth"`
	RetryAfterSeconds int    `json:"retryAfterSeconds"`
}

// writeAdmissionError renders a 429 with the per-tenant Retry-After in
// both the header and the body.
func (s *Service) writeAdmissionError(w http.ResponseWriter, tn *tenant.Tenant, err error) {
	retry := retryAfterSeconds(s.RetryAfterTenant(tn.Name))
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusTooManyRequests, admissionError{
		Error:             err.Error(),
		Tenant:            tn.Name,
		QueueDepth:        s.QueueDepth(tn.Name),
		RetryAfterSeconds: retry,
	})
}

// retryAfterSeconds renders a Retry-After hint, rounding UP: truncation
// would turn a sub-second (or 1.9s) estimate into a hint that tells
// clients to hammer the queue sooner than the backlog can drain.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w, s.Gauges())
}

// artifactInfo is one registry entry in the listing.
type artifactInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	File        string `json:"file"`
	Header      string `json:"header"`
	QuickCells  int    `json:"quickCells"`
	FullCells   int    `json:"fullCells"`
}

func (s *Service) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	var out []artifactInfo
	for _, a := range s.opts.Registry.Artifacts() {
		info := artifactInfo{
			Name:        a.Name,
			Description: a.Description,
			File:        a.File,
			Header:      a.Header,
		}
		// Cell planning is cheap (no cell bodies run), so the listing
		// can report the decomposition width per sizing.
		for _, sz := range []harness.Sizing{harness.SizingQuick, harness.SizingFull} {
			if cells, err := a.Cells(harness.Plan{Cfg: *s.opts.BaseConfig, Seed: s.opts.DefaultSeed, Sizing: sz}); err == nil {
				if sz == harness.SizingQuick {
					info.QuickCells = len(cells)
				} else {
					info.FullCells = len(cells)
				}
			}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"artifacts": out})
}

// protocolInfo is one coherence-protocol registry entry in the listing.
type protocolInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// States are the protocol's legal states as single-letter names.
	States []string `json:"states"`
	// SilentUpgrades reports whether the protocol permits the silent
	// clean-to-dirty upgrade the paper's channel is built on.
	SilentUpgrades bool `json:"silentUpgrades"`
	// Default marks the protocol jobs get when their config override
	// names none.
	Default bool `json:"default"`
}

// replacementInfo is one row of GET /v1/replacements.
type replacementInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Default marks the policy jobs get when their config override
	// names none.
	Default bool `json:"default"`
}

// handleReplacements lists the registered cache replacement policies —
// the names a job's config override may set as "Replacement".
func (s *Service) handleReplacements(w http.ResponseWriter, r *http.Request) {
	def := s.opts.BaseConfig.ReplacementPolicy()
	var out []replacementInfo
	for _, info := range cache.Policies() {
		out = append(out, replacementInfo{
			Name:        info.Name,
			Description: info.Description,
			Default:     info.Policy == def,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"replacements": out})
}

// handleProtocols lists the registered coherence protocols — the names a
// job's config override may set as "Protocol".
func (s *Service) handleProtocols(w http.ResponseWriter, r *http.Request) {
	def, _ := coherence.SpecFor(s.opts.BaseConfig.Protocol)
	var out []protocolInfo
	for _, p := range coherence.Protocols() {
		spec := coherence.MustSpec(p)
		info := protocolInfo{
			Name:           spec.Name(),
			Description:    spec.Description(),
			SilentUpgrades: spec.SilentUpgrades(),
			Default:        def != nil && spec.Name() == def.Name(),
		}
		for _, st := range spec.States() {
			if st.Valid() {
				info.States = append(info.States, st.String())
			}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"protocols": out})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "request body: " + err.Error()})
		return
	}
	tn := s.tenantOf(r)
	job, err := s.SubmitAs(tn, &req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuota):
		s.writeAdmissionError(w, tn, err)
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	v, _ := s.JobView(job.ID)
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.JobViewsFor(s.tenantOf(r))})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.JobViewFor(s.tenantOf(r), r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.CancelFor(s.tenantOf(r), id) {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	v, _ := s.JobView(id)
	writeJSON(w, http.StatusOK, v)
}

// handleTenantSelf reports the caller's identity, quotas and live
// usage — what a client consults to understand its own 429s.
func (s *Service) handleTenantSelf(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.TenantSelf(s.tenantOf(r)))
}

// handleEvents streams a job's progress as Server-Sent Events. The
// per-job history replays first (so late subscribers see every cell),
// then live events follow until the job reaches a terminal state or the
// client disconnects. A reconnecting subscriber sends Last-Event-ID
// (the standard SSE header, mirroring the id: field we emit) and
// resumes from the next event instead of replaying the full history.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	history, ch, unsub, ok := s.SubscribeFor(s.tenantOf(r), r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	defer unsub()
	serveSSE(w, r, history, ch,
		func(ev Event) (int, string) { return ev.Seq, ev.Type },
		func(ev Event) bool { return ev.Type == "state" && ev.State.Terminal() })
}

// serveSSE is the shared Server-Sent Events writer behind the job and
// sweep streams: replay history (skipping past Last-Event-ID on
// reconnect), then follow the live channel until the stream's final
// event, the subscriber is evicted, or the client disconnects. Frames
// carry id: (the event's sequence number), event: (its type) and a
// JSON data: payload.
func serveSSE[E any](w http.ResponseWriter, r *http.Request, history []E, ch chan E, ident func(E) (seq int, typ string), last func(E) bool) {
	lastSeen := -1
	if v := strings.TrimSpace(r.Header.Get("Last-Event-ID")); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			lastSeen = n
		}
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	write := func(ev E) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		seq, typ := ident(ev)
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, typ, data)
		if canFlush {
			flusher.Flush()
		}
		return !last(ev)
	}
	for _, ev := range history {
		if seq, _ := ident(ev); seq <= lastSeen {
			continue
		}
		if !write(ev) {
			return
		}
	}
	if ch == nil {
		return
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleVersion reports the daemon binary's build identity.
func (s *Service) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, version.Get())
}

// handleSweepSubmit admits a parameter sweep. The body is a sweep.Spec;
// the whole grid is validated (including every point's config) before
// anything is accepted.
func (s *Service) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "request body: " + err.Error()})
		return
	}
	tn := s.tenantOf(r)
	sw, err := s.SubmitSweepAs(tn, spec)
	switch {
	case errors.Is(err, ErrQuota):
		s.writeAdmissionError(w, tn, err)
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	v, _ := s.SweepView(sw.ID)
	w.Header().Set("Location", "/v1/sweeps/"+sw.ID)
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Service) handleSweeps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": s.SweepViewsFor(s.tenantOf(r))})
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	v, ok := s.SweepViewFor(s.tenantOf(r), r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown sweep"})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.CancelSweepFor(s.tenantOf(r), id) {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown sweep"})
		return
	}
	v, _ := s.SweepView(id)
	writeJSON(w, http.StatusOK, v)
}

// handleSweepEvents streams sweep progress (point completions, backoff
// notices, frontier updates) over SSE with the same history-replay and
// Last-Event-ID resume semantics as job streams.
func (s *Service) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	history, ch, unsub, ok := s.SubscribeSweepFor(s.tenantOf(r), r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown sweep"})
		return
	}
	defer unsub()
	serveSSE(w, r, history, ch,
		func(ev SweepEvent) (int, string) { return ev.Seq, ev.Type },
		func(ev SweepEvent) bool { return ev.Type == "state" && ev.State.Terminal() })
}

// handleSweepFrontier serves the sweep's ranked frontier as TSV. The
// bytes are deterministic for a fixed spec + seed regardless of how the
// points were scheduled.
func (s *Service) handleSweepFrontier(w http.ResponseWriter, r *http.Request) {
	tsv, ok := s.SweepFrontierTSVFor(s.tenantOf(r), r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown sweep"})
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	w.Header().Set("Content-Disposition", `attachment; filename="frontier.tsv"`)
	w.Write(tsv)
}

// handleDownload serves an assembled artifact as TSV (byte-identical to
// the cmd/experiments file output) or as a versioned replay JSON record.
func (s *Service) handleDownload(w http.ResponseWriter, r *http.Request) {
	id, file := r.PathValue("id"), r.PathValue("file")
	name, ext, ok := strings.Cut(file, ".")
	if !ok || name == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "want <artifact>.tsv or <artifact>.json"})
		return
	}
	tn := s.tenantOf(r)
	res, found := s.ResultFor(tn, id, name)
	if !found {
		if _, jobExists := s.JobViewFor(tn, id); !jobExists {
			writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		} else {
			writeJSON(w, http.StatusNotFound, apiError{Error: "no assembled result for artifact " + name + " (job still running, cancelled early, or artifact not requested)"})
		}
		return
	}
	switch ext {
	case "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="`+res.Artifact.File+`"`)
		w.Write(res.TSV())
	case "json":
		w.Header().Set("Content-Type", "application/json")
		replay.SaveArtifact(w, harness.NewArtifactRecord(res))
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: "unknown extension ." + ext + " (want .tsv or .json)"})
	}
}
