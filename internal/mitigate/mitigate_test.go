package mitigate

import (
	"testing"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

const testBits = 60

func attackBits() []byte {
	bits := make([]byte, testBits)
	x := uint64(0xabcdef)
	for i := range bits {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		bits[i] = byte(x & 1)
	}
	return bits
}

func baselineAccuracy(t *testing.T) float64 {
	t.Helper()
	ch := covert.NewChannel(covert.Scenarios[0])
	res, err := ch.Run(attackBits())
	if err != nil {
		t.Fatal(err)
	}
	return res.Accuracy
}

func TestBaselineChannelWorks(t *testing.T) {
	if acc := baselineAccuracy(t); acc != 1 {
		t.Fatalf("undefended channel accuracy = %v, want 1", acc)
	}
}

// Defense #1: the monitor thread's injected loads must wreck the channel.
func TestMonitorBreaksChannel(t *testing.T) {
	var mon *Monitor
	ch := covert.NewChannel(covert.Scenarios[0])
	ch.PreRun = func(s *covert.Session) {
		mon = AttachMonitor(s.Kern, DefaultMonitorConfig(), AttackLines(s))
	}
	res, err := ch.Run(attackBits())
	if err != nil {
		t.Fatal(err)
	}
	if mon.Injections == 0 {
		t.Fatal("monitor never injected a load")
	}
	// Note: edit-distance accuracy between two random binary strings
	// floors around 0.7, so <= 0.8 already means the decode is garbage.
	if res.Accuracy > 0.8 {
		t.Fatalf("monitored channel accuracy = %v, want heavily degraded", res.Accuracy)
	}
}

// The monitor must also break the E-vs-S signal in every other scenario.
func TestMonitorBreaksAllScenarios(t *testing.T) {
	for _, sc := range covert.Scenarios {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			ch := covert.NewChannel(sc)
			ch.PreRun = func(s *covert.Session) {
				AttachMonitor(s.Kern, DefaultMonitorConfig(), AttackLines(s))
			}
			res, err := ch.Run(attackBits())
			if err != nil {
				t.Fatal(err)
			}
			if res.Accuracy > 0.85 {
				t.Errorf("accuracy %v under monitor", res.Accuracy)
			}
		})
	}
}

// Defense #2: the KSM guard un-merges the probed page; the spy then
// times its own private copy and the channel dies entirely.
func TestKSMGuardBreaksChannel(t *testing.T) {
	var guard *KSMGuard
	var sess *covert.Session
	ch := covert.NewChannel(covert.Scenarios[0])
	ch.Mode = covert.ShareKSM
	ch.PreRun = func(s *covert.Session) {
		sess = s
		guard = AttachKSMGuard(s.Kern, DefaultKSMGuardConfig())
	}
	res, err := ch.Run(attackBits())
	if err != nil {
		t.Fatal(err)
	}
	if guard.Splits == 0 {
		t.Fatal("guard never split a page")
	}
	if sess.TrojanProc.SharesFrameWith(sess.TrojanVA, sess.SpyProc, sess.SpyVA) {
		t.Fatal("shared frame survived the guard")
	}
	if res.Accuracy > 0.8 {
		t.Fatalf("guarded channel accuracy = %v", res.Accuracy)
	}
}

// The guard must not split pages under normal (slow) access patterns.
func TestKSMGuardLeavesQuietPagesAlone(t *testing.T) {
	var guard *KSMGuard
	ch := covert.NewChannel(covert.Scenarios[0])
	ch.Mode = covert.ShareKSM
	// Slow the probing below the guard's suspicion threshold by using a
	// long sampling interval.
	p := covert.DefaultParams()
	p.Ts = 60_000
	ch.Params = p
	ch.PreRun = func(s *covert.Session) {
		guard = AttachKSMGuard(s.Kern, DefaultKSMGuardConfig())
	}
	res, err := ch.Run(attackBits()[:6])
	if err != nil {
		t.Fatal(err)
	}
	if guard.Splits != 0 {
		t.Fatalf("guard split %d quiet pages", guard.Splits)
	}
	if res.Accuracy != 1 {
		t.Fatalf("slow channel accuracy = %v", res.Accuracy)
	}
}

// Defense #3a: with E->M notification the LLC answers clean-E misses
// directly, so E and S bands collapse and every E-based scenario dies.
func TestHardwareFixCollapsesEBands(t *testing.T) {
	cfg := HardwareFix(machine.DefaultConfig())
	for _, name := range []string{"LExclc-LSharedb", "RExclc-RSharedb"} {
		sc, err := covert.ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ch := covert.NewChannel(sc)
		ch.Config = cfg
		res, err := ch.Run(attackBits())
		if err != nil {
			t.Fatal(err)
		}
		if res.Accuracy > 0.8 {
			t.Errorf("%s survives the hardware fix: accuracy %v", name, res.Accuracy)
		}
	}
}

// The E->M fix alone does NOT stop location-based scenarios (e.g. remote
// shared vs local shared) — the paper pairs it with the timing
// obfuscator for that reason.
func TestHardwareFixAloneLeavesLocationSignal(t *testing.T) {
	cfg := HardwareFix(machine.DefaultConfig())
	sc, _ := covert.ScenarioByName("RSharedc-LSharedb")
	ch := covert.NewChannel(sc)
	ch.Config = cfg
	res, err := ch.Run(attackBits())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("location-only scenario should survive E->M fix, accuracy %v", res.Accuracy)
	}
}

// Defense #3b: the full hardware defense (E->M notification + latency
// equalization) kills every scenario.
func TestFullHardwareDefenseKillsEverything(t *testing.T) {
	cfg := FullHardwareDefense(machine.DefaultConfig())
	for _, sc := range covert.Scenarios {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			ch := covert.NewChannel(sc)
			ch.Config = cfg
			res, err := ch.Run(attackBits())
			if err != nil {
				t.Fatal(err)
			}
			if res.Accuracy > 0.8 {
				t.Errorf("accuracy %v under full hardware defense", res.Accuracy)
			}
		})
	}
}

func TestMultiBitDiesUnderFullDefense(t *testing.T) {
	ch := covert.NewMultiBitChannel()
	ch.Config = FullHardwareDefense(machine.DefaultConfig())
	res, err := ch.Run(attackBits()[:40])
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy > 0.8 {
		t.Fatalf("multibit accuracy %v under full defense", res.Accuracy)
	}
}
