// Package mitigate implements the paper's three proposed defenses
// (§VIII-E) against coherence-state covert channels:
//
//  1. A monitor thread that watches shared pages for flush+reload probe
//     patterns and injects targeted loads, converting E-state blocks to S
//     and scrambling the spy's timing.
//  2. A KSM guard that un-merges deduplicated pages showing suspicious
//     access patterns, destroying the trojan/spy shared frame.
//  3. Hardware changes — E->M notification to the LLC and socket-latency
//     equalization — exposed as machine.Mitigations flags; this package
//     provides the helpers that enable them on a channel configuration.
package mitigate

import (
	"coherentleak/internal/covert"
	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// MonitorConfig tunes the noise-injection defense.
type MonitorConfig struct {
	// Core is where the monitor thread runs.
	Core int
	// Period is the monitor's polling interval in cycles.
	Period sim.Cycles
	// FlushRateThreshold: pages whose flush count grows faster than this
	// many flushes per Period are considered under probe attack.
	FlushRateThreshold uint64
	// InjectLoads is how many loads the monitor issues on a suspicious
	// line per period (two loads force S state).
	InjectLoads int
}

// DefaultMonitorConfig watches aggressively enough to break the default
// channel without drowning the machine in monitor traffic.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		Core:               3,
		Period:             4000,
		FlushRateThreshold: 1,
		InjectLoads:        2,
	}
}

// Monitor is defense #1: "add targeted noise to shared memory pages by
// having a monitor thread, that observes accesses to shared memory pages
// and dynamically issues additional loads. This method disrupts the
// covert timing channel by changing the coherence states (e.g., convert
// E to S) and alter spy's timing values."
type Monitor struct {
	cfg  MonitorConfig
	kern *kernel.Kernel
	proc *kernel.Process
	th   *kernel.Thread

	// watched maps line physical addresses to their last seen flush
	// epoch.
	watched map[uint64]uint64

	// Injections counts loads issued against suspicious lines.
	Injections int
}

// AttachMonitor starts the monitor over the given shared physical lines
// (the defense watches pages mapped into more than one process; passing
// the explicit line set keeps the simulation honest about what an OS
// could enumerate from reverse mappings).
func AttachMonitor(kern *kernel.Kernel, cfg MonitorConfig, lines []uint64) *Monitor {
	m := &Monitor{
		cfg:     cfg,
		kern:    kern,
		proc:    kern.NewProcess("cc-monitor"),
		watched: make(map[uint64]uint64),
	}
	for _, l := range lines {
		m.watched[l] = kern.Machine().FlushEpoch(l)
	}
	m.th = kern.Spawn(m.proc, cfg.Core, "monitor", func(kt *kernel.Thread) {
		m.run(kt)
	})
	return m
}

// run polls flush epochs and injects loads on hot lines. The monitor
// issues machine-level loads directly (it is OS/hypervisor code and may
// touch any physical line).
func (m *Monitor) run(kt *kernel.Thread) {
	mach := m.kern.Machine()
	for !kt.StopRequested() {
		kt.Advance(m.cfg.Period)
		for line, last := range m.watched {
			now := mach.FlushEpoch(line)
			if now-last >= m.cfg.FlushRateThreshold {
				for i := 0; i < m.cfg.InjectLoads; i++ {
					mach.Load(kt.Sim, m.cfg.Core+i%2, line)
					m.Injections++
				}
			}
			m.watched[line] = now
		}
	}
}

// Stop terminates the monitor thread.
func (m *Monitor) Stop() {
	m.kern.World().StopThread(m.th.Sim)
}

// KSMGuardConfig tunes the un-merge defense.
type KSMGuardConfig struct {
	// Period is the guard's scan interval.
	Period sim.Cycles
	// FlushBudget: a merged page whose lines accumulate more than this
	// many flushes between scans is split.
	FlushBudget uint64
}

// DefaultKSMGuardConfig splits pages probed faster than ~1 flush per
// 10k cycles.
func DefaultKSMGuardConfig() KSMGuardConfig {
	return KSMGuardConfig{Period: 50_000, FlushBudget: 5}
}

// KSMGuard is defense #2: "setup timeouts for KSM to un-merge shared
// pages with suspicious access pattern so that the trojan and spy
// communication can be disrupted dynamically."
type KSMGuard struct {
	cfg  KSMGuardConfig
	kern *kernel.Kernel
	th   *sim.Thread

	lastEpoch map[uint64]uint64 // frame number -> flush epoch of its first line

	// Splits counts pages un-merged by the guard.
	Splits int
}

// AttachKSMGuard starts the guard daemon.
func AttachKSMGuard(kern *kernel.Kernel, cfg KSMGuardConfig) *KSMGuard {
	g := &KSMGuard{cfg: cfg, kern: kern, lastEpoch: make(map[uint64]uint64)}
	g.th = kern.World().Spawn("ksm-guard", func(t *sim.Thread) {
		for !t.StopRequested() {
			t.Advance(cfg.Period)
			g.scan()
		}
	})
	return g
}

// scan walks merged frames and splits the suspicious ones.
func (g *KSMGuard) scan() {
	mach := g.kern.Machine()
	for _, p := range g.kern.Processes() {
		for _, vp := range p.Pages() {
			pte := p.PTEOf(vp * kernel.PageSize)
			if pte == nil || !pte.Frame.MergedByKSM {
				continue
			}
			frame := pte.Frame
			// Sum flush activity over the frame's lines.
			var flushes uint64
			for off := uint64(0); off < kernel.PageSize; off += 64 {
				flushes += mach.FlushEpoch(frame.Base() + off)
			}
			last := g.lastEpoch[frame.Number]
			g.lastEpoch[frame.Number] = flushes
			if last != 0 && flushes-last > g.cfg.FlushBudget {
				if n := g.kern.KSM.UnmergePage(frame.Number); n > 0 {
					g.Splits++
				}
			}
		}
	}
}

// Stop terminates the guard.
func (g *KSMGuard) Stop() { g.kern.World().StopThread(g.th) }

// HardwareFix returns cfg with defense #3 enabled: the LLC is notified
// of E->M upgrades and services clean-E misses directly, collapsing the
// E/S latency bands.
func HardwareFix(cfg machine.Config) machine.Config {
	cfg.Mitigations.LLCNotifiedOfEToM = true
	return cfg
}

// TimingObfuscator returns cfg with the location-hiding pad enabled:
// every off-core load costs the worst-case path, hiding local/remote.
func TimingObfuscator(cfg machine.Config) machine.Config {
	cfg.Mitigations.EqualizeSocketLatency = true
	return cfg
}

// FullHardwareDefense combines both hardware changes.
func FullHardwareDefense(cfg machine.Config) machine.Config {
	return TimingObfuscator(HardwareFix(cfg))
}

// AttackLines returns the line addresses of the page containing the
// session's shared block — what an OS monitor would enumerate for
// defense #1.
func AttackLines(s *covert.Session) []uint64 {
	base := s.SharedPA() &^ (kernel.PageSize - 1)
	lines := make([]uint64, 0, kernel.PageSize/64)
	for off := uint64(0); off < kernel.PageSize; off += 64 {
		lines = append(lines, base+off)
	}
	return lines
}
