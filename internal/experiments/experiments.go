// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated testbed. Each Fig*/Table* function returns
// typed rows; the cmd/experiments binary renders them as TSV, and the
// repository-root benchmarks wrap them for `go test -bench`.
package experiments

import (
	"fmt"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// Defaults shared by the experiment entry points.
const (
	// DefaultSeed pins every experiment's determinism.
	DefaultSeed = 20180224 // HPCA 2018 opened Feb 24, 2018
)

// PatternBits returns n deterministic pseudo-random bits for payloads.
func PatternBits(seed uint64, n int) []byte {
	r := sim.NewRand(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Uint64() & 1)
	}
	return out
}

// Fig6Pattern is the 100-bit pattern the trojan transmits in Figures 6-7.
func Fig6Pattern() []byte { return PatternBits(DefaultSeed^0x66, 100) }

// RatePoint is one x/y point of Figure 8.
type RatePoint struct {
	TargetKbps   float64
	MeasuredKbps float64
	Accuracy     float64
	Params       covert.Params
}

// Fig8Targets are the swept bit rates (Kbps), the paper's 100..1000 axis.
func Fig8Targets() []float64 {
	return []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
}

// Fig8RateSweep measures raw-bit accuracy against attempted bit rate for
// one scenario (one subplot of Figure 8).
func Fig8RateSweep(cfg machine.Config, sc covert.Scenario, targets []float64, payloadBits int, seed uint64) ([]RatePoint, error) {
	bits := PatternBits(seed^0x88, payloadBits)
	bands, err := covert.Calibrate(cfg, seed+7777, 200, covert.DefaultParams().BandMargin)
	if err != nil {
		return nil, err
	}
	out := make([]RatePoint, 0, len(targets))
	for i, target := range targets {
		p := covert.ParamsForRate(cfg, sc, target)
		ch := &covert.Channel{
			Config:      cfg,
			Scenario:    sc,
			Params:      p,
			Mode:        covert.ShareExplicit,
			WorldSeed:   seed + uint64(i)*31,
			PatternSeed: seed,
			Bands:       &bands,
		}
		res, err := ch.Run(bits)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s @%v: %w", sc.Name(), target, err)
		}
		out = append(out, RatePoint{
			TargetKbps:   target,
			MeasuredKbps: res.RawKbps,
			Accuracy:     res.Accuracy,
			Params:       p,
		})
	}
	return out, nil
}
