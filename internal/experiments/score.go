package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// TSV score extraction: the sweep engine ranks operating points by a
// number pulled out of an artifact's assembled TSV (covert capacity
// from the capacity table, error rate from fig9, mitigation accuracy
// from the ablation table, ...). The artifact tables are the single
// source of truth for every reproduced figure, so scoring reads them
// rather than re-deriving numbers through a side channel.

// TSVColumn extracts one named column from an assembled TSV table
// (header line first, tab-separated, as produced by
// harness.ArtifactResult.TSV). Rows are optionally restricted by
// filter: a map of column name to the exact cell value a row must
// carry to be included. Numeric cells parse as floats; the cells
// "true"/"false" parse as 1/0 so boolean columns (e.g. protomatrix's
// "survives") can be aggregated too.
func TSVColumn(tsv []byte, column string, filter map[string]string) ([]float64, error) {
	lines := strings.Split(strings.TrimRight(string(tsv), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, fmt.Errorf("experiments: empty TSV")
	}
	header := strings.Split(lines[0], "\t")
	col := -1
	filterIdx := make(map[int]string, len(filter))
	for i, h := range header {
		if h == column {
			col = i
		}
		if want, ok := filter[h]; ok {
			filterIdx[i] = want
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("experiments: column %q not in TSV header %q", column, lines[0])
	}
	if len(filterIdx) != len(filter) {
		missing := make([]string, 0, len(filter))
		for name := range filter {
			found := false
			for _, h := range header {
				if h == name {
					found = true
					break
				}
			}
			if !found {
				missing = append(missing, name)
			}
		}
		return nil, fmt.Errorf("experiments: filter column(s) %s not in TSV header %q",
			strings.Join(missing, ", "), lines[0])
	}

	var out []float64
rows:
	for ln, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		for i, want := range filterIdx {
			if i >= len(fields) || fields[i] != want {
				continue rows
			}
		}
		if col >= len(fields) {
			return nil, fmt.Errorf("experiments: row %d has %d field(s), column %q is index %d", ln+1, len(fields), column, col)
		}
		v, err := parseCell(fields[col])
		if err != nil {
			return nil, fmt.Errorf("experiments: row %d column %q: %w", ln+1, column, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseCell(s string) (float64, error) {
	switch s {
	case "true":
		return 1, nil
	case "false":
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("cell %q is not numeric", s)
	}
	return v, nil
}

// AggregateColumn folds extracted column values into one score.
// Supported aggregates: "max", "min", "mean", "sum", "first", "last",
// "count". An empty vals slice is an error for everything but "count":
// a sweep point whose filtered TSV is empty has no score.
func AggregateColumn(vals []float64, aggregate string) (float64, error) {
	if aggregate == "count" {
		return float64(len(vals)), nil
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("experiments: no rows to aggregate")
	}
	switch aggregate {
	case "max":
		out := math.Inf(-1)
		for _, v := range vals {
			if v > out {
				out = v
			}
		}
		return out, nil
	case "min":
		out := math.Inf(1)
		for _, v := range vals {
			if v < out {
				out = v
			}
		}
		return out, nil
	case "mean":
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals)), nil
	case "sum":
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return sum, nil
	case "first":
		return vals[0], nil
	case "last":
		return vals[len(vals)-1], nil
	}
	return 0, fmt.Errorf("experiments: unknown aggregate %q (want max, min, mean, sum, first, last or count)", aggregate)
}
