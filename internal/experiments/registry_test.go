package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
)

func registryPlan(sizing harness.Sizing) harness.Plan {
	return harness.Plan{Cfg: machine.DefaultConfig(), Seed: DefaultSeed, Sizing: sizing}
}

// TestArtifactsRegistryComplete pins the registered artifact set — the
// CLI's -only vocabulary and the benchmark sub-test names.
func TestArtifactsRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "peaks", "mitigations", "capacity", "protomatrix", "lrustate", "dirtystate"}
	got := Artifacts().Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("registry = %v, want %v", got, want)
	}
}

// TestArtifactCellPlansAreWellFormed enumerates every artifact's cells
// at both sizings without running them: non-empty, uniquely named, and
// decomposed (the sweep artifacts must expose real parallelism).
func TestArtifactCellPlansAreWellFormed(t *testing.T) {
	minCells := map[string]int{
		"fig2": 4, "fig7": 6, "fig8": 6, "fig9": 6, "fig10": 6,
		"mitigations": 6, "capacity": 3,
	}
	for _, sizing := range []harness.Sizing{harness.SizingQuick, harness.SizingFull} {
		for _, a := range Artifacts().Artifacts() {
			cells, err := a.Cells(registryPlan(sizing))
			if err != nil {
				t.Fatalf("%s/%s: %v", a.Name, sizing, err)
			}
			if len(cells) == 0 {
				t.Fatalf("%s/%s: no cells", a.Name, sizing)
			}
			if min := minCells[a.Name]; len(cells) < min {
				t.Fatalf("%s/%s: %d cells, want >= %d", a.Name, sizing, len(cells), min)
			}
			seen := map[string]bool{}
			for _, c := range cells {
				if c.Name == "" || c.Run == nil || seen[c.Name] {
					t.Fatalf("%s/%s: bad cell %q", a.Name, sizing, c.Name)
				}
				seen[c.Name] = true
			}
		}
	}
}

// TestGoldenTSVs regenerates table1.tsv and fig6_pattern.tsv through
// the Runner and compares them byte-for-byte against checked-in golden
// files (both artifacts are sizing-independent and fully deterministic).
func TestGoldenTSVs(t *testing.T) {
	dir := t.TempDir()
	arts, err := Artifacts().Select([]string{"table1", "fig6"})
	if err != nil {
		t.Fatal(err)
	}
	r := &harness.Runner{Parallel: 2, Sinks: []harness.Sink{harness.TSVSink{Dir: dir}}}
	rep, err := r.Run(context.Background(), registryPlan(harness.SizingQuick), arts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	for file, golden := range map[string]string{
		"table1.tsv":       "table1.golden.tsv",
		"fig6_pattern.tsv": "fig6_pattern.golden.tsv",
	} {
		got, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", golden))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s deviates from testdata/%s:\n--- got ---\n%s--- want ---\n%s", file, golden, got, want)
		}
	}
}

// TestDecomposedSweepsMatchSerialFunctions verifies that the per-cell
// entry points carved out for the registry (MitigationScenario,
// CapacityColumn, Fig2Placement) reproduce the historical whole-grid
// functions exactly, seeds included.
func TestDecomposedSweepsMatchSerialFunctions(t *testing.T) {
	cfg := machine.DefaultConfig()

	whole, err := Fig2LatencyCDF(cfg, 50, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range whole {
		cell, err := Fig2Placement(cfg, s.Placement, 50, DefaultSeed+uint64(i)*13)
		if err != nil {
			t.Fatal(err)
		}
		if len(cell.Samples) != len(s.Samples) {
			t.Fatalf("fig2 %s: sample count differs", s.Placement)
		}
		for j := range cell.Samples {
			if cell.Samples[j] != s.Samples[j] {
				t.Fatalf("fig2 %s sample %d: %v != %v", s.Placement, j, cell.Samples[j], s.Samples[j])
			}
		}
	}
}
