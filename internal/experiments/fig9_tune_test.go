package experiments

import (
	"fmt"
	"testing"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

// TestFig9Shape checks the noise study's qualitative claims: above 90%
// average accuracy up to 6 co-located kernel-build threads, and a
// noticeable (11-23% error) degradation at 8 (§VIII-C).
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	cfg := machine.DefaultConfig()
	avg := map[int]float64{}
	for _, sc := range covert.Scenarios {
		pts, err := Fig9Noise(cfg, sc, Fig9NoiseLevels(), 300, DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		line := sc.Name() + ":"
		for _, p := range pts {
			line += fmt.Sprintf(" %d->%.1f%%", p.NoiseThreads, p.Accuracy*100)
			avg[p.NoiseThreads] += p.Accuracy / float64(len(covert.Scenarios))
		}
		t.Log(line)
	}
	t.Logf("avg: 0->%.3f 6->%.3f 8->%.3f", avg[0], avg[6], avg[8])
	if avg[0] < 0.99 {
		t.Errorf("quiet accuracy %.3f", avg[0])
	}
	if avg[6] < 0.90 {
		t.Errorf("6-thread accuracy %.3f, want >= 0.90", avg[6])
	}
	if avg[8] > 0.92 || avg[8] < 0.70 {
		t.Errorf("8-thread accuracy %.3f, want 11-23%% error zone", avg[8])
	}
}
