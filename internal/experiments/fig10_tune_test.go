package experiments

import (
	"fmt"
	"testing"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

// TestFig10Shape checks the error-correction study: 100% recovery
// everywhere; <=10% effective-rate loss vs raw with no noise; worst-case
// ~24% additional loss under high noise (§VIII-C).
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	cfg := machine.DefaultConfig()
	worstHighLoss := 0.0
	for _, sc := range covert.Scenarios[:2] { // two scenarios keep runtime sane here; the bench covers all six
		pts, err := Fig10ECC(cfg, sc, Fig10NoiseLevels(), 2, DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		line := sc.Name() + ":"
		var quiet float64
		for _, p := range pts {
			line += fmt.Sprintf(" n%d->%.0fKbps(raw %.0f, rtx %d, rec %v)", p.NoiseThreads, p.EffectiveKbps, p.RawKbps, p.Retransmissions, p.Recovered)
			if !p.Recovered {
				t.Errorf("%s n=%d: not recovered", sc.Name(), p.NoiseThreads)
			}
			switch p.NoiseThreads {
			case 0:
				quiet = p.EffectiveKbps
				if loss := 1 - p.EffectiveKbps/p.RawKbps; loss > 0.15 {
					t.Errorf("%s: quiet ECC loss %.0f%% vs raw", sc.Name(), loss*100)
				}
			case 8:
				if quiet > 0 {
					if loss := 1 - p.EffectiveKbps/quiet; loss > worstHighLoss {
						worstHighLoss = loss
					}
				}
			}
		}
		t.Log(line)
	}
	t.Logf("worst high-noise loss vs quiet-ECC: %.0f%%", worstHighLoss*100)
	if worstHighLoss > 0.45 {
		t.Errorf("high-noise loss %.0f%%, paper reports ~24%% worst case", worstHighLoss*100)
	}
}
