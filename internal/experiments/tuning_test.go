package experiments

import (
	"fmt"
	"testing"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

// TestFig8Shape prints the rate sweep for all six scenarios. Assertions
// encode the paper's qualitative shape: near-perfect accuracy at low
// rates, degradation past the mid-range, with RExclc-LExclb and
// RExclc-LSharedb the most robust (§VIII-B).
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	cfg := machine.DefaultConfig()
	acc := map[string]map[float64]float64{}
	for _, sc := range covert.Scenarios {
		pts, err := Fig8RateSweep(cfg, sc, Fig8Targets(), 400, DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		acc[sc.Name()] = map[float64]float64{}
		line := sc.Name() + ":"
		for _, p := range pts {
			acc[sc.Name()][p.TargetKbps] = p.Accuracy
			line += " " + fmtF(p.TargetKbps) + "->" + fmtF(p.Accuracy*100) + "%(" + fmtF(p.MeasuredKbps) + ")"
		}
		t.Log(line)
	}
	// Low-rate reliability for every scenario.
	for name, m := range acc {
		if m[100] < 0.99 || m[300] < 0.98 {
			t.Errorf("%s: low-rate accuracy too low: 100->%v 300->%v", name, m[100], m[300])
		}
	}
	// Degradation past the mid-range for the weakest pair.
	if acc["LExclc-LSharedb"][1000] > 0.95 {
		t.Errorf("LExclc-LSharedb too robust at 1000: %v", acc["LExclc-LSharedb"][1000])
	}
	// The two §VIII-B exceptions stay strong at 800.
	if acc["RExclc-LExclb"][800] < 0.90 {
		t.Errorf("RExclc-LExclb at 800 = %v, want >= 0.90", acc["RExclc-LExclb"][800])
	}
	if acc["RExclc-LSharedb"][800] < 0.94 {
		t.Errorf("RExclc-LSharedb at 800 = %v, want >= 0.94", acc["RExclc-LSharedb"][800])
	}
}

func fmtF(f float64) string { return fmt.Sprintf("%.1f", f) }
