package experiments

import (
	"coherentleak/internal/covert"
	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/noise"
	"coherentleak/internal/sim"
	"coherentleak/internal/stats"
)

// Fig2Series is one CDF curve of Figure 2.
type Fig2Series struct {
	Placement covert.Placement
	Samples   []float64
	CDF       []stats.CDFPoint
	Summary   stats.Summary
}

// desktopNoise attaches the §V measurement background: two light
// browser/dropbox/editor-grade threads, routed through the kernel layer
// to keep page handling real.
func desktopNoise(w *sim.World, m *machine.Machine) {
	k := kernel.New(m, 0)
	ncfg := noise.DefaultConfig(2)
	ncfg.WorkingSetPages = 128
	ncfg.ThinkCycles = 400 // light desktop load, not kcbench
	if _, err := noise.Attach(k, ncfg); err != nil {
		panic(err)
	}
}

// Fig2Placement measures one curve of Figure 2: timed loads for a
// single (location, coherence-state) combination under the
// representative desktop workload. It is the per-cell unit of the fig2
// artifact — each call builds its own world.
func Fig2Placement(cfg machine.Config, pl covert.Placement, samples int, seed uint64) (Fig2Series, error) {
	xs, err := covert.MeasurePlacement(cfg, seed, pl, samples, desktopNoise)
	if err != nil {
		return Fig2Series{}, err
	}
	return Fig2Series{
		Placement: pl,
		Samples:   xs,
		CDF:       stats.CDF(xs),
		Summary:   stats.Summarize(xs),
	}, nil
}

// Fig2LatencyCDF reproduces Figure 2: timed loads per (location,
// coherence state) combination under a representative desktop workload
// (a couple of background noise threads, as in §V's measurement setup).
func Fig2LatencyCDF(cfg machine.Config, samples int, seed uint64) ([]Fig2Series, error) {
	out := make([]Fig2Series, 0, len(covert.AllPlacements))
	for i, pl := range covert.AllPlacements {
		s, err := Fig2Placement(cfg, pl, samples, seed+uint64(i)*13)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
