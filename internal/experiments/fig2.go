package experiments

import (
	"coherentleak/internal/covert"
	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/noise"
	"coherentleak/internal/sim"
	"coherentleak/internal/stats"
)

// Fig2Series is one CDF curve of Figure 2.
type Fig2Series struct {
	Placement covert.Placement
	Samples   []float64
	CDF       []stats.CDFPoint
	Summary   stats.Summary
}

// Fig2LatencyCDF reproduces Figure 2: 1000 timed loads per (location,
// coherence state) combination under a representative desktop workload
// (a couple of background noise threads, as in §V's measurement setup).
func Fig2LatencyCDF(cfg machine.Config, samples int, seed uint64) ([]Fig2Series, error) {
	desktop := func(w *sim.World, m *machine.Machine) {
		// Browser/dropbox/editor-grade background: two light threads.
		// They attach through the kernel layer to keep page handling real.
		k := kernel.New(m, 0)
		ncfg := noise.DefaultConfig(2)
		ncfg.WorkingSetPages = 128
		ncfg.ThinkCycles = 400 // light desktop load, not kcbench
		if _, err := noise.Attach(k, ncfg); err != nil {
			panic(err)
		}
	}
	out := make([]Fig2Series, 0, len(covert.AllPlacements))
	for i, pl := range covert.AllPlacements {
		xs, err := covert.MeasurePlacement(cfg, seed+uint64(i)*13, pl, samples, desktop)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig2Series{
			Placement: pl,
			Samples:   xs,
			CDF:       stats.CDF(xs),
			Summary:   stats.Summarize(xs),
		})
	}
	return out, nil
}
