package experiments

import (
	"fmt"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
	"coherentleak/internal/mitigate"
)

// MitigationPoint is one cell of the defense ablation (the quantified
// form of §VIII-E): raw-bit accuracy of a scenario under one defense.
type MitigationPoint struct {
	Scenario string
	Defense  string
	Accuracy float64
}

// MitigationNames lists the ablated defenses.
func MitigationNames() []string {
	return []string{"none", "monitor", "ksm-guard", "etom-notify", "equalize", "full-hw"}
}

// MitigationAblation measures every (scenario, defense) cell.
func MitigationAblation(cfg machine.Config, payloadBits int, seed uint64) ([]MitigationPoint, error) {
	bits := PatternBits(seed^0xd3f, payloadBits)
	var out []MitigationPoint
	for _, sc := range covert.Scenarios {
		for _, def := range MitigationNames() {
			ch := covert.Channel{
				Config:      cfg,
				Scenario:    sc,
				Params:      covert.DefaultParams(),
				Mode:        covert.ShareKSM,
				WorldSeed:   seed + uint64(len(out))*41,
				PatternSeed: seed,
			}
			switch def {
			case "none":
			case "monitor":
				ch.PreRun = func(s *covert.Session) {
					mitigate.AttachMonitor(s.Kern, mitigate.DefaultMonitorConfig(), mitigate.AttackLines(s))
				}
			case "ksm-guard":
				ch.PreRun = func(s *covert.Session) {
					mitigate.AttachKSMGuard(s.Kern, mitigate.DefaultKSMGuardConfig())
				}
			case "etom-notify":
				ch.Config = mitigate.HardwareFix(cfg)
			case "equalize":
				ch.Config = mitigate.TimingObfuscator(cfg)
			case "full-hw":
				ch.Config = mitigate.FullHardwareDefense(cfg)
			}
			res, err := ch.Run(bits)
			if err != nil {
				return nil, fmt.Errorf("mitigation %s/%s: %w", sc.Name(), def, err)
			}
			out = append(out, MitigationPoint{
				Scenario: sc.Name(),
				Defense:  def,
				Accuracy: res.Accuracy,
			})
		}
	}
	return out, nil
}
