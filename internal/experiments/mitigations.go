package experiments

import (
	"fmt"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
	"coherentleak/internal/mitigate"
)

// MitigationPoint is one cell of the defense ablation (the quantified
// form of §VIII-E): raw-bit accuracy of a scenario under one defense.
type MitigationPoint struct {
	Scenario string
	Defense  string
	Accuracy float64
}

// MitigationNames lists the ablated defenses.
func MitigationNames() []string {
	return []string{"none", "monitor", "ksm-guard", "etom-notify", "equalize", "full-hw"}
}

// MitigationAblation measures every (scenario, defense) cell.
func MitigationAblation(cfg machine.Config, payloadBits int, seed uint64) ([]MitigationPoint, error) {
	var out []MitigationPoint
	for si, sc := range covert.Scenarios {
		pts, err := MitigationScenario(cfg, sc, si, payloadBits, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

// MitigationScenario measures one scenario row of the ablation — every
// defense against one scenario. scIndex is the scenario's position in
// covert.Scenarios; it keeps the per-cell world seeds identical to a
// whole-grid sweep, so a decomposed (parallel) run reproduces the same
// numbers as the serial grid.
func MitigationScenario(cfg machine.Config, sc covert.Scenario, scIndex int, payloadBits int, seed uint64) ([]MitigationPoint, error) {
	bits := PatternBits(seed^0xd3f, payloadBits)
	names := MitigationNames()
	out := make([]MitigationPoint, 0, len(names))
	for di, def := range names {
		cell := scIndex*len(names) + di
		ch := covert.Channel{
			Config:      cfg,
			Scenario:    sc,
			Params:      covert.DefaultParams(),
			Mode:        covert.ShareKSM,
			WorldSeed:   seed + uint64(cell)*41,
			PatternSeed: seed,
		}
		switch def {
		case "none":
		case "monitor":
			ch.PreRun = func(s *covert.Session) {
				mitigate.AttachMonitor(s.Kern, mitigate.DefaultMonitorConfig(), mitigate.AttackLines(s))
			}
		case "ksm-guard":
			ch.PreRun = func(s *covert.Session) {
				mitigate.AttachKSMGuard(s.Kern, mitigate.DefaultKSMGuardConfig())
			}
		case "etom-notify":
			ch.Config = mitigate.HardwareFix(cfg)
		case "equalize":
			ch.Config = mitigate.TimingObfuscator(cfg)
		case "full-hw":
			ch.Config = mitigate.FullHardwareDefense(cfg)
		}
		res, err := ch.Run(bits)
		if err != nil {
			return nil, fmt.Errorf("mitigation %s/%s: %w", sc.Name(), def, err)
		}
		out = append(out, MitigationPoint{
			Scenario: sc.Name(),
			Defense:  def,
			Accuracy: res.Accuracy,
		})
	}
	return out, nil
}
