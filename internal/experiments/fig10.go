package experiments

import (
	"fmt"

	"coherentleak/internal/covert"
	"coherentleak/internal/ecc"
	"coherentleak/internal/machine"
	"coherentleak/internal/noise"
)

// Fig10Point is one bar group of Figure 10 for a scenario: the raw rate
// without error correction, and the effective rate with the parity+NACK
// retransmission scheme at a noise level.
type Fig10Point struct {
	Scenario        string
	NoiseThreads    int     // 0 = none, 4 = medium, 8 = high
	RawKbps         float64 // no-ECC rate at the same operating point, quiet
	EffectiveKbps   float64
	Retransmissions int
	Recovered       bool
}

// Fig10NoiseLevels are the paper's none/medium/high settings.
func Fig10NoiseLevels() []int { return []int{0, 4, 8} }

// Fig10Params is the whole-packet-retransmission operating point: a
// go-back protocol only works when a 528-bit frame usually arrives
// intact, so the adversary rate-adapts to a redundancy-heavy, slower
// configuration (more repetitions per symbol absorb preemption bursts;
// the MinRun filter rejects isolated queuing flips).
func Fig10Params() covert.Params {
	p := covert.DefaultParams()
	p.C1 = 6
	p.C0 = 3
	p.Cb = 4
	p.Ts = 3800
	p.MinRun = 3
	p.EndRun = 16
	return p
}

// Fig10ECC measures the retransmission protocol's effective rate for one
// scenario across noise levels, transferring payloadPackets 64-byte
// packets.
func Fig10ECC(cfg machine.Config, sc covert.Scenario, levels []int, payloadPackets int, seed uint64) ([]Fig10Point, error) {
	bands, err := covert.Calibrate(cfg, seed+7777, 200, covert.DefaultParams().BandMargin)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, payloadPackets*ecc.PacketBytes)
	r := PatternBits(seed^0x1010, len(payload)*8)
	for i := range payload {
		var v byte
		for j := 0; j < 8; j++ {
			v = v<<1 | r[i*8+j]
		}
		payload[i] = v
	}

	// Baseline raw rate on the quiet machine at the same operating point.
	quiet := covert.Channel{
		Config: cfg, Scenario: sc, Params: Fig10Params(),
		Mode: covert.ShareExplicit, WorldSeed: seed + 5, PatternSeed: seed,
		Bands: &bands,
	}
	rawRes, err := quiet.Run(PatternBits(seed^0x2020, 528))
	if err != nil {
		return nil, err
	}

	out := make([]Fig10Point, 0, len(levels))
	for i, n := range levels {
		n := n
		ch := covert.Channel{
			Config: cfg, Scenario: sc, Params: Fig10Params(),
			Mode: covert.ShareExplicit, WorldSeed: seed + uint64(i)*131, PatternSeed: seed,
			Bands: &bands,
			PreRun: func(s *covert.Session) {
				if n == 0 {
					return
				}
				if _, err := noise.Attach(s.Kern, noise.DefaultConfig(n)); err != nil {
					panic(err)
				}
				s.OSNoiseProb = noise.CoLocationPressure(s.Kern, n)
			},
		}
		p := ecc.NewProtocol(ch)
		res, err := p.Send(payload)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s n=%d: %w", sc.Name(), n, err)
		}
		out = append(out, Fig10Point{
			Scenario:        sc.Name(),
			NoiseThreads:    n,
			RawKbps:         rawRes.RawKbps,
			EffectiveKbps:   res.EffectiveKbps,
			Retransmissions: res.Retransmissions,
			Recovered:       res.Recovered,
		})
	}
	return out, nil
}
