package experiments

import (
	"fmt"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

// Fig11Result reproduces Figure 11: the 2-bit-symbol channel's reception
// trace for a pattern whose first 18 bits (100101000110011011) exercise
// all four symbols, plus the measured rate.
type Fig11Result struct {
	TxBits      []byte
	RxBits      []byte
	SymbolTrace []int
	Samples     []covert.Sample
	Accuracy    float64
	RawKbps     float64
}

// Fig11Prefix is the paper's 18-bit demonstration prefix.
func Fig11Prefix() []byte {
	return []byte{1, 0, 0, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1, 0, 1, 1}
}

// Fig11MultiBit runs the demonstration: the 18-bit prefix followed by
// extraBits payload bits, at the default multi-bit operating point.
func Fig11MultiBit(cfg machine.Config, extraBits int, seed uint64) (*Fig11Result, error) {
	bits := append(Fig11Prefix(), PatternBits(seed^0x1111, extraBits-extraBits%2)...)
	ch := &covert.MultiBitChannel{
		Config:      cfg,
		Params:      covert.DefaultMultiBitParams(),
		Mode:        covert.ShareKSM,
		WorldSeed:   seed,
		PatternSeed: seed ^ 0xfeed,
	}
	res, err := ch.Run(bits)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{
		TxBits:      res.TxBits,
		RxBits:      res.RxBits,
		SymbolTrace: res.SymbolTrace,
		Samples:     res.Samples,
		Accuracy:    res.Accuracy,
		RawKbps:     res.RawKbps,
	}, nil
}

// PeakRates searches the achievable peak rates reported in the paper's
// abstract: the best binary-channel rate and the best 2-bit-symbol rate
// holding raw accuracy at or above minAccuracy.
type PeakRates struct {
	BinaryKbps   float64
	BinaryName   string
	MultiBitKbps float64
}

// FindPeakRates sweeps operating points and returns the fastest
// configurations that keep accuracy >= minAccuracy.
func FindPeakRates(cfg machine.Config, minAccuracy float64, payloadBits int, seed uint64) (*PeakRates, error) {
	bands, err := covert.Calibrate(cfg, seed+7777, 200, covert.DefaultParams().BandMargin)
	if err != nil {
		return nil, err
	}
	bits := PatternBits(seed^0x3333, payloadBits-payloadBits%2)

	out := &PeakRates{}
	for _, sc := range covert.Scenarios {
		for _, target := range Fig8Targets() {
			ch := covert.Channel{
				Config: cfg, Scenario: sc, Params: covert.ParamsForRate(cfg, sc, target),
				Mode: covert.ShareExplicit, WorldSeed: seed + uint64(target), PatternSeed: seed,
				Bands: &bands,
			}
			res, err := ch.Run(bits)
			if err != nil {
				return nil, fmt.Errorf("peak sweep %s@%v: %w", sc.Name(), target, err)
			}
			if res.Accuracy >= minAccuracy && res.RawKbps > out.BinaryKbps {
				out.BinaryKbps = res.RawKbps
				out.BinaryName = sc.Name()
			}
		}
	}
	for _, target := range []float64{600, 800, 1000, 1100, 1200, 1400} {
		ch := covert.MultiBitChannel{
			Config: cfg, Params: covert.MultiBitParamsForRate(cfg, target),
			Mode: covert.ShareExplicit, WorldSeed: seed + uint64(target) + 71, PatternSeed: seed,
			Bands: &bands,
		}
		res, err := ch.Run(bits)
		if err != nil {
			return nil, fmt.Errorf("multibit peak sweep @%v: %w", target, err)
		}
		if res.Accuracy >= minAccuracy && res.RawKbps > out.MultiBitKbps {
			out.MultiBitKbps = res.RawKbps
		}
	}
	return out, nil
}
