package experiments

import (
	"testing"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

func TestPatternBitsDeterministicAndBinary(t *testing.T) {
	a := PatternBits(7, 200)
	b := PatternBits(7, 200)
	ones := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
		if a[i] > 1 {
			t.Fatal("non-binary bit")
		}
		ones += int(a[i])
	}
	// Roughly balanced.
	if ones < 60 || ones > 140 {
		t.Fatalf("ones = %d/200", ones)
	}
}

func TestFig6PatternIs100Bits(t *testing.T) {
	if len(Fig6Pattern()) != 100 {
		t.Fatalf("Fig6 pattern length %d", len(Fig6Pattern()))
	}
}

func TestTableIMatchesScenarios(t *testing.T) {
	rows := TableI()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, row := range rows {
		if row.Notation != covert.Scenarios[i].Name() {
			t.Errorf("row %d = %s", i, row.Notation)
		}
	}
}

func TestFig2Smoke(t *testing.T) {
	series, err := Fig2LatencyCDF(machine.DefaultConfig(), 50, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	// Means must be ordered localS < localE < remoteS < remoteE.
	var prev float64
	for _, s := range series {
		if s.Summary.Mean <= prev {
			t.Fatalf("band means not increasing: %v after %v", s.Summary.Mean, prev)
		}
		prev = s.Summary.Mean
		if len(s.CDF) == 0 {
			t.Fatal("empty CDF")
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	res, err := Fig7Reception(machine.DefaultConfig(), covert.Scenarios[0], DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 {
		t.Fatalf("fig7 accuracy %v", res.Accuracy)
	}
	if len(res.Samples) < 100 {
		t.Fatalf("trace too short: %d", len(res.Samples))
	}
}

func TestFig11Smoke(t *testing.T) {
	res, err := Fig11MultiBit(machine.DefaultConfig(), 20, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.99 {
		t.Fatalf("fig11 accuracy %v", res.Accuracy)
	}
	if len(res.TxBits) != len(Fig11Prefix())+20 {
		t.Fatalf("payload = %d bits", len(res.TxBits))
	}
}

func TestCapacityTableSmoke(t *testing.T) {
	pts, err := CapacityTable(machine.DefaultConfig(), covert.Scenarios[0],
		[]float64{300}, []int{0}, 60, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	p := pts[0]
	if p.InfoKbps <= 0 || p.TCSEC != "high-bandwidth" {
		t.Fatalf("capacity point = %+v", p)
	}
}

func TestMitigationAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 36 transmissions")
	}
	pts, err := MitigationAblation(machine.DefaultConfig(), 24, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 36 {
		t.Fatalf("cells = %d", len(pts))
	}
	// Undefended cells decode perfectly; monitor cells are destroyed.
	for _, p := range pts {
		switch p.Defense {
		case "none":
			if p.Accuracy != 1 {
				t.Errorf("%s/none accuracy %v", p.Scenario, p.Accuracy)
			}
		case "monitor":
			if p.Accuracy > 0.85 {
				t.Errorf("%s/monitor accuracy %v", p.Scenario, p.Accuracy)
			}
		}
	}
}

func TestFindPeakRatesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps many operating points")
	}
	pk, err := FindPeakRates(machine.DefaultConfig(), 0.97, 80, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if pk.BinaryKbps < 400 {
		t.Fatalf("binary peak %v too low", pk.BinaryKbps)
	}
	if pk.MultiBitKbps <= pk.BinaryKbps {
		t.Fatalf("multibit peak %v not above binary %v", pk.MultiBitKbps, pk.BinaryKbps)
	}
}
