package experiments

import (
	"strings"
	"testing"
)

var scoreTSV = []byte(strings.Join([]string{
	"scenario\tnoise\tinfo_kbps\tsurvives",
	"a\t0\t1000.5\ttrue",
	"a\t8\t250.0\ttrue",
	"b\t0\t900.0\tfalse",
	"b\t8\t100.0\tfalse",
	"",
}, "\n"))

func TestTSVColumn(t *testing.T) {
	vals, err := TSVColumn(scoreTSV, "info_kbps", nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1000.5, 250, 900, 100}; len(vals) != len(want) {
		t.Fatalf("vals = %v, want %v", vals, want)
	} else {
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("vals = %v, want %v", vals, want)
			}
		}
	}

	// Filtered extraction restricts rows before aggregation.
	vals, err = TSVColumn(scoreTSV, "info_kbps", map[string]string{"scenario": "a", "noise": "8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != 250 {
		t.Fatalf("filtered vals = %v, want [250]", vals)
	}

	// Boolean cells parse as 1/0.
	vals, err = TSVColumn(scoreTSV, "survives", map[string]string{"scenario": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 0 || vals[1] != 0 {
		t.Fatalf("bool vals = %v, want [0 0]", vals)
	}
}

func TestTSVColumnErrors(t *testing.T) {
	if _, err := TSVColumn(scoreTSV, "nope", nil); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := TSVColumn(scoreTSV, "info_kbps", map[string]string{"nope": "x"}); err == nil {
		t.Fatal("unknown filter column accepted")
	}
	if _, err := TSVColumn(scoreTSV, "scenario", nil); err == nil {
		t.Fatal("non-numeric column parsed")
	}
	if _, err := TSVColumn(nil, "x", nil); err == nil {
		t.Fatal("empty TSV accepted")
	}
}

func TestAggregateColumn(t *testing.T) {
	vals := []float64{3, 1, 2}
	for _, tc := range []struct {
		agg  string
		want float64
	}{
		{"max", 3}, {"min", 1}, {"mean", 2}, {"sum", 6},
		{"first", 3}, {"last", 2}, {"count", 3},
	} {
		got, err := AggregateColumn(vals, tc.agg)
		if err != nil {
			t.Fatalf("%s: %v", tc.agg, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.agg, got, tc.want)
		}
	}
	if _, err := AggregateColumn(nil, "max"); err == nil {
		t.Fatal("empty max accepted")
	}
	if got, err := AggregateColumn(nil, "count"); err != nil || got != 0 {
		t.Fatalf("count of empty = %v, %v", got, err)
	}
	if _, err := AggregateColumn(vals, "median"); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
}
