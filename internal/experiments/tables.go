package experiments

import (
	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// Table1Row is one row of Table I.
type Table1Row struct {
	Notation       string
	CommPlacement  string
	BoundPlacement string
	LocalThreads   int
	RemoteThreads  int
}

// TableI returns the six attack configurations.
func TableI() []Table1Row {
	out := make([]Table1Row, 0, len(covert.Scenarios))
	for _, sc := range covert.Scenarios {
		l, r := sc.TrojanThreads()
		out = append(out, Table1Row{
			Notation:       sc.Name(),
			CommPlacement:  sc.Comm.String(),
			BoundPlacement: sc.Bound.String(),
			LocalThreads:   l,
			RemoteThreads:  r,
		})
	}
	return out
}

// Fig7Result is one subfigure of Figure 7: the spy's reception trace for
// the 100-bit Figure 6 pattern, plus decode quality.
type Fig7Result struct {
	Scenario   string
	TxBits     []byte
	RxBits     []byte
	Samples    []covert.Sample
	Accuracy   float64
	RawKbps    float64
	SyncCycles sim.Cycles
}

// Fig7Reception runs the Figure 6/7 demonstration for one scenario at
// the reliable operating point.
func Fig7Reception(cfg machine.Config, sc covert.Scenario, seed uint64) (*Fig7Result, error) {
	ch := &covert.Channel{
		Config:      cfg,
		Scenario:    sc,
		Params:      covert.DefaultParams(),
		Mode:        covert.ShareKSM,
		WorldSeed:   seed,
		PatternSeed: seed ^ 0x7777,
	}
	res, err := ch.Run(Fig6Pattern())
	if err != nil {
		return nil, err
	}
	return &Fig7Result{
		Scenario:   sc.Name(),
		TxBits:     res.TxBits,
		RxBits:     res.RxBits,
		Samples:    res.Samples,
		Accuracy:   res.Accuracy,
		RawKbps:    res.RawKbps,
		SyncCycles: res.SyncCycles,
	}, nil
}
