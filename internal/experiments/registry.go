package experiments

import (
	"fmt"
	"strings"

	"coherentleak/internal/coherence"
	"coherentleak/internal/covert"
	"coherentleak/internal/harness"
)

// Artifacts builds the registry of every paper artifact. Each artifact
// declares its TSV shape and decomposes into independent cells (one
// placement, scenario or sweep column per cell), so the harness Runner
// can execute a whole regeneration on a worker pool while keeping the
// assembled tables byte-identical to a serial run. Cell seed
// derivations mirror the historical serial loops, so the numbers match
// the pre-engine outputs as well.
func Artifacts() *harness.Registry {
	reg := harness.NewRegistry()
	for _, a := range []*harness.Artifact{
		table1Artifact(),
		fig2Artifact(),
		fig6Artifact(),
		fig7Artifact(),
		fig8Artifact(),
		fig9Artifact(),
		fig10Artifact(),
		fig11Artifact(),
		peaksArtifact(),
		mitigationsArtifact(),
		capacityArtifact(),
		protomatrixArtifact(),
		lrustateArtifact(),
		dirtystateArtifact(),
	} {
		reg.MustRegister(a)
	}
	return reg
}

// oneCell wraps a single-unit artifact body.
func oneCell(name string, run func() (harness.CellOutput, error)) func(harness.Plan) ([]harness.Cell, error) {
	return func(harness.Plan) ([]harness.Cell, error) {
		return []harness.Cell{{Name: name, Run: run}}, nil
	}
}

// scenarioCells builds one cell per Table I scenario.
func scenarioCells(run func(sc covert.Scenario, i int) (harness.CellOutput, error)) []harness.Cell {
	cells := make([]harness.Cell, 0, len(covert.Scenarios))
	for i, sc := range covert.Scenarios {
		cells = append(cells, harness.Cell{
			Name: sc.Name(),
			Run:  func() (harness.CellOutput, error) { return run(sc, i) },
		})
	}
	return cells
}

func table1Artifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "table1",
		Description: "Table I: the six attack configurations",
		File:        "table1.tsv",
		Header:      "notation\tcomm\tboundary\tlocal_threads\tremote_threads",
		Cells: oneCell("rows", func() (harness.CellOutput, error) {
			var out harness.CellOutput
			for _, row := range TableI() {
				out.Rows = append(out.Rows, fmt.Sprintf("%s\t%s\t%s\t%d\t%d",
					row.Notation, row.CommPlacement, row.BoundPlacement,
					row.LocalThreads, row.RemoteThreads))
			}
			return out, nil
		}),
	}
}

func fig2Artifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "fig2",
		Description: "Figure 2: load-latency CDF per (location, coherence-state) placement",
		File:        "fig2_cdf.tsv",
		Header:      "placement\tlatency_cycles\tcdf",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			cells := make([]harness.Cell, 0, len(covert.AllPlacements))
			for i, pl := range covert.AllPlacements {
				cells = append(cells, harness.Cell{
					Name: pl.String(),
					Run: func() (harness.CellOutput, error) {
						s, err := Fig2Placement(p.Cfg, pl, p.Size(1000, 200), p.Seed+uint64(i)*13)
						if err != nil {
							return harness.CellOutput{}, err
						}
						var out harness.CellOutput
						for _, pt := range s.CDF {
							out.Rows = append(out.Rows, fmt.Sprintf("%s\t%.0f\t%.4f", s.Placement, pt.X, pt.P))
						}
						out.Summary = append(out.Summary, fmt.Sprintf(
							"fig2 %-8s mean=%.1f cycles (min %.0f, max %.0f)",
							s.Placement, s.Summary.Mean, s.Summary.Min, s.Summary.Max))
						return out, nil
					},
				})
			}
			return cells, nil
		},
	}
}

func fig6Artifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "fig6",
		Description: "Figure 6: the 100-bit pattern the trojan transmits",
		File:        "fig6_pattern.tsv",
		Header:      "index\tbit",
		Cells: oneCell("pattern", func() (harness.CellOutput, error) {
			var out harness.CellOutput
			for i, b := range Fig6Pattern() {
				out.Rows = append(out.Rows, fmt.Sprintf("%d\t%d", i, b))
			}
			return out, nil
		}),
	}
}

func fig7Artifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "fig7",
		Description: "Figure 7: spy reception trace of the 100-bit pattern per scenario",
		File:        "fig7_reception.tsv",
		Header:      "scenario\tsample\tlatency_cycles\tclass",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return scenarioCells(func(sc covert.Scenario, i int) (harness.CellOutput, error) {
				res, err := Fig7Reception(p.Cfg, sc, p.Seed+uint64(i)*17)
				if err != nil {
					return harness.CellOutput{}, err
				}
				var out harness.CellOutput
				for j, s := range res.Samples {
					out.Rows = append(out.Rows, fmt.Sprintf("%s\t%d\t%d\t%s", res.Scenario, j, s.Latency, s.Class))
				}
				out.Summary = append(out.Summary, fmt.Sprintf(
					"fig7 %-18s accuracy=%.1f%% rate=%.0f Kbps sync=%.2f us",
					res.Scenario, res.Accuracy*100, res.RawKbps,
					p.Cfg.CyclesToSeconds(res.SyncCycles)*1e6))
				return out, nil
			}), nil
		},
	}
}

func fig8Artifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "fig8",
		Description: "Figure 8: raw-bit accuracy vs attempted bit rate per scenario",
		File:        "fig8_rate_accuracy.tsv",
		Header:      "scenario\ttarget_kbps\tmeasured_kbps\taccuracy",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return scenarioCells(func(sc covert.Scenario, _ int) (harness.CellOutput, error) {
				pts, err := Fig8RateSweep(p.Cfg, sc, Fig8Targets(), p.Size(1000, 300), p.Seed)
				if err != nil {
					return harness.CellOutput{}, err
				}
				var out harness.CellOutput
				line := fmt.Sprintf("fig8 %-18s", sc.Name())
				for _, pt := range pts {
					out.Rows = append(out.Rows, fmt.Sprintf("%s\t%.0f\t%.1f\t%.4f",
						sc.Name(), pt.TargetKbps, pt.MeasuredKbps, pt.Accuracy))
					line += fmt.Sprintf(" %.0f:%.0f%%", pt.TargetKbps, pt.Accuracy*100)
				}
				out.Summary = append(out.Summary, line)
				return out, nil
			}), nil
		},
	}
}

func fig9Artifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "fig9",
		Description: "Figure 9: accuracy under co-located kernel-build noise per scenario",
		File:        "fig9_noise_accuracy.tsv",
		Header:      "scenario\tnoise_threads\taccuracy\tmeasured_kbps",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return scenarioCells(func(sc covert.Scenario, _ int) (harness.CellOutput, error) {
				pts, err := Fig9Noise(p.Cfg, sc, Fig9NoiseLevels(), p.Size(500, 200), p.Seed)
				if err != nil {
					return harness.CellOutput{}, err
				}
				var out harness.CellOutput
				line := fmt.Sprintf("fig9 %-18s", sc.Name())
				for _, pt := range pts {
					out.Rows = append(out.Rows, fmt.Sprintf("%s\t%d\t%.4f\t%.1f",
						pt.Scenario, pt.NoiseThreads, pt.Accuracy, pt.MeasuredKbps))
					line += fmt.Sprintf(" n%d:%.0f%%", pt.NoiseThreads, pt.Accuracy*100)
				}
				out.Summary = append(out.Summary, line)
				return out, nil
			}), nil
		},
	}
}

func fig10Artifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "fig10",
		Description: "Figure 10: effective rate with parity+NACK retransmission under noise",
		File:        "fig10_ecc.tsv",
		Header:      "scenario\tnoise_threads\traw_kbps\teffective_kbps\tretransmissions\trecovered",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return scenarioCells(func(sc covert.Scenario, _ int) (harness.CellOutput, error) {
				pts, err := Fig10ECC(p.Cfg, sc, Fig10NoiseLevels(), p.Size(3, 1), p.Seed)
				if err != nil {
					return harness.CellOutput{}, err
				}
				var out harness.CellOutput
				line := fmt.Sprintf("fig10 %-18s", sc.Name())
				for _, pt := range pts {
					out.Rows = append(out.Rows, fmt.Sprintf("%s\t%d\t%.1f\t%.1f\t%d\t%v",
						pt.Scenario, pt.NoiseThreads, pt.RawKbps, pt.EffectiveKbps,
						pt.Retransmissions, pt.Recovered))
					line += fmt.Sprintf(" n%d:%.0fKbps(rtx %d)", pt.NoiseThreads, pt.EffectiveKbps, pt.Retransmissions)
				}
				out.Summary = append(out.Summary, line)
				return out, nil
			}), nil
		},
	}
}

func fig11Artifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "fig11",
		Description: "Figure 11: 2-bit-symbol channel reception trace",
		File:        "fig11_multibit.tsv",
		Header:      "sample\tlatency_cycles\tsymbol",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return []harness.Cell{{
				Name: "multibit",
				Run: func() (harness.CellOutput, error) {
					res, err := Fig11MultiBit(p.Cfg, p.Size(200, 60), p.Seed)
					if err != nil {
						return harness.CellOutput{}, err
					}
					var out harness.CellOutput
					for i, s := range res.Samples {
						out.Rows = append(out.Rows, fmt.Sprintf("%d\t%d\t%d", i, s.Latency, res.SymbolTrace[i]))
					}
					out.Summary = append(out.Summary, fmt.Sprintf(
						"fig11 multibit accuracy=%.1f%% rate=%.0f Kbps", res.Accuracy*100, res.RawKbps))
					return out, nil
				},
			}}, nil
		},
	}
}

// peaksMinAccuracy is the abstract's accuracy floor for the headline
// peak rates.
const peaksMinAccuracy = 0.97

func peaksArtifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "peaks",
		Description: "Abstract headline: peak binary and 2-bit-symbol rates at >=97% accuracy",
		File:        "peaks.tsv",
		Header:      "channel\tkbps\tscenario",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return []harness.Cell{{
				Name: "sweep",
				Run: func() (harness.CellOutput, error) {
					pk, err := FindPeakRates(p.Cfg, peaksMinAccuracy, p.Size(400, 150), p.Seed)
					if err != nil {
						return harness.CellOutput{}, err
					}
					return harness.CellOutput{
						Rows: []string{
							fmt.Sprintf("binary\t%.1f\t%s", pk.BinaryKbps, pk.BinaryName),
							fmt.Sprintf("multibit\t%.1f\t-", pk.MultiBitKbps),
						},
						Summary: []string{fmt.Sprintf(
							"peaks: binary %.0f Kbps (%s), multibit %.0f Kbps at >=%.0f%% accuracy",
							pk.BinaryKbps, pk.BinaryName, pk.MultiBitKbps, peaksMinAccuracy*100)},
					}, nil
				},
			}}, nil
		},
	}
}

func mitigationsArtifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "mitigations",
		Description: "§VIII-E ablation: raw-bit accuracy per (scenario, defense)",
		File:        "mitigations.tsv",
		Header:      "scenario\tdefense\taccuracy",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return scenarioCells(func(sc covert.Scenario, i int) (harness.CellOutput, error) {
				pts, err := MitigationScenario(p.Cfg, sc, i, p.Size(120, 60), p.Seed)
				if err != nil {
					return harness.CellOutput{}, err
				}
				var out harness.CellOutput
				for _, pt := range pts {
					out.Rows = append(out.Rows, fmt.Sprintf("%s\t%s\t%.4f", pt.Scenario, pt.Defense, pt.Accuracy))
				}
				out.Summary = append(out.Summary, fmt.Sprintf("mitigations %-18s %d cells", sc.Name(), len(pts)))
				return out, nil
			}), nil
		},
	}
}

func protomatrixArtifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "protomatrix",
		Description: "protocol x policy x channel survival matrix over every registered coherence protocol and replacement policy",
		File:        "protocol_matrix.tsv",
		Header:      "protocol\tpolicy\tchannel\traw_kbps\taccuracy\tinfo_kbps\tsurvives\tnote",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			protos := coherence.Protocols()
			cells := make([]harness.Cell, 0, len(protos))
			for i, proto := range protos {
				i, proto := i, proto
				cells = append(cells, harness.Cell{
					Name: strings.ToLower(string(proto)),
					Run: func() (harness.CellOutput, error) {
						pts, err := MatrixRow(p.Cfg, proto, i, p.Size(120, 40), p.Seed)
						if err != nil {
							return harness.CellOutput{}, err
						}
						var out harness.CellOutput
						for _, pt := range pts {
							out.Rows = append(out.Rows, fmt.Sprintf("%s\t%s\t%s\t%.1f\t%.4f\t%.1f\t%v\t%s",
								pt.Protocol, pt.Policy, pt.Channel, pt.RawKbps, pt.Accuracy, pt.InfoKbps, pt.Survives, pt.Note))
							out.Summary = append(out.Summary, fmt.Sprintf(
								"protomatrix %-7s %-9s %-10s survives=%-5v acc=%.0f%% info=%.0f Kbps",
								pt.Protocol, pt.Policy, pt.Channel, pt.Survives, pt.Accuracy*100, pt.InfoKbps))
						}
						return out, nil
					},
				})
			}
			return cells, nil
		},
	}
}

// capacityScenario is the robust pair the §II capacity table studies.
func capacityScenario() covert.Scenario { return covert.Scenarios[3] } // RExclc-LSharedb

// capacityTargets and capacityNoise are the studied grid axes.
func capacityTargets() []float64 { return []float64{300, 700, 1000} }
func capacityNoise() []int       { return []int{0, 8} }

func capacityArtifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "capacity",
		Description: "§II extension: information rate and TCSEC class over a rate x noise grid",
		File:        "capacity.tsv",
		Header:      "scenario\ttarget_kbps\tnoise\traw_kbps\tflip\tlost\textra\tinfo_kbps\ttcsec",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			sc := capacityScenario()
			targets := capacityTargets()
			cells := make([]harness.Cell, 0, len(targets))
			for i, target := range targets {
				cells = append(cells, harness.Cell{
					Name: fmt.Sprintf("rate%.0f", target),
					Run: func() (harness.CellOutput, error) {
						pts, err := CapacityColumn(p.Cfg, sc, target, i, capacityNoise(), p.Size(400, 150), p.Seed)
						if err != nil {
							return harness.CellOutput{}, err
						}
						var out harness.CellOutput
						for _, pt := range pts {
							out.Rows = append(out.Rows, fmt.Sprintf("%s\t%.0f\t%d\t%.1f\t%.4f\t%.4f\t%.4f\t%.1f\t%s",
								pt.Scenario, pt.TargetKbps, pt.NoiseThreads, pt.RawKbps,
								pt.FlipRate, pt.LostRate, pt.ExtraRate, pt.InfoKbps, pt.TCSEC))
							out.Summary = append(out.Summary, fmt.Sprintf(
								"capacity %s @%.0f n=%d: info %.0f Kbps (%s)",
								pt.Scenario, pt.TargetKbps, pt.NoiseThreads, pt.InfoKbps, pt.TCSEC))
						}
						return out, nil
					},
				})
			}
			return cells, nil
		},
	}
}
