package experiments

import (
	"fmt"
	"strings"

	"coherentleak/internal/capacity"
	"coherentleak/internal/coherence"
	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

// MatrixPoint is one (protocol, channel) cell of the protocol × channel
// survival matrix: the channel's measured operating point under that
// protocol, or — for dead cells — the reason the channel could not be
// established.
type MatrixPoint struct {
	Protocol string
	Channel  string
	RawKbps  float64
	Accuracy float64
	InfoKbps float64
	Survives bool
	Note     string
}

// matrixSurvival is the raw-bit accuracy above which a channel counts as
// surviving a protocol: well below the live channels' operating
// accuracies (>97%), well above what a partially collapsed band
// structure produces (a 2-bit channel reduced to two distinguishable
// levels tops out near 75%).
const matrixSurvival = 0.9

// MatrixChannels lists the channel implementations the matrix probes:
// binary-state is the paper's coherence-state channel proper (local E vs
// local S — same socket, only the state differs), binary-socket the
// robust cross-socket pair (remote E vs local S, which also leaks
// location), and multibit the 2-bit-symbol channel that needs all four
// latency bands at once.
func MatrixChannels() []string { return []string{"binary-state", "binary-socket", "multibit"} }

// MatrixCell measures one (protocol, channel) pair of the matrix.
// Channel establishment failures — calibration unable to find distinct
// latency bands, which is exactly what a leak-free protocol like WT-NA
// produces — are data, not errors: they come back as a dead row with the
// reason in Note. Only genuinely unknown inputs return an error.
func MatrixCell(base machine.Config, proto coherence.Protocol, channel string, payloadBits int, seed uint64) (MatrixPoint, error) {
	spec, err := coherence.SpecFor(proto)
	if err != nil {
		return MatrixPoint{}, err
	}
	cfg := base
	cfg.Protocol = coherence.Protocol(spec.Name())
	pt := MatrixPoint{Protocol: spec.Name(), Channel: channel, Note: "-"}
	dead := func(err error) MatrixPoint {
		pt.Note = strings.NewReplacer("\t", " ", "\n", " ").Replace(err.Error())
		return pt
	}

	switch channel {
	case "binary-state", "binary-socket":
		bands, err := covert.Calibrate(cfg, seed+7777, 200, covert.DefaultParams().BandMargin)
		if err != nil {
			return dead(err), nil
		}
		sc := covert.Scenarios[0] // LExclc-LSharedb: only the state differs
		if channel == "binary-socket" {
			sc = covert.Scenarios[3] // RExclc-LSharedb: the robust pair
		}
		ch := covert.Channel{
			Config:      cfg,
			Scenario:    sc,
			Params:      covert.DefaultParams(),
			Mode:        covert.ShareExplicit,
			WorldSeed:   seed + 31,
			PatternSeed: seed,
			Bands:       &bands,
		}
		res, err := ch.Run(PatternBits(seed^0xFACE, payloadBits))
		if err != nil {
			return dead(err), nil
		}
		rep := capacity.Analyze(res.TxBits, res.RxBits, res.RawKbps)
		pt.RawKbps, pt.Accuracy, pt.InfoKbps = res.RawKbps, res.Accuracy, rep.InfoKbps
	case "multibit":
		res, err := Fig11MultiBit(cfg, payloadBits, seed)
		if err != nil {
			return dead(err), nil
		}
		rep := capacity.Analyze(res.TxBits, res.RxBits, res.RawKbps)
		pt.RawKbps, pt.Accuracy, pt.InfoKbps = res.RawKbps, res.Accuracy, rep.InfoKbps
	default:
		return MatrixPoint{}, fmt.Errorf("protomatrix: unknown channel %q", channel)
	}
	pt.Survives = pt.Accuracy >= matrixSurvival
	return pt, nil
}

// MatrixRow measures every channel for one protocol.
func MatrixRow(base machine.Config, proto coherence.Protocol, protoIndex, payloadBits int, seed uint64) ([]MatrixPoint, error) {
	channels := MatrixChannels()
	out := make([]MatrixPoint, 0, len(channels))
	for j, chn := range channels {
		pt, err := MatrixCell(base, proto, chn, payloadBits, seed+uint64(protoIndex)*101+uint64(j)*7)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
