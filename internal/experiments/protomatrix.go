package experiments

import (
	"fmt"
	"strings"

	"coherentleak/internal/cache"
	"coherentleak/internal/capacity"
	"coherentleak/internal/coherence"
	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

// MatrixPoint is one (protocol, policy, channel) cell of the survival
// matrix: the channel's measured operating point under that protocol and
// replacement policy, or — for dead cells — the reason the channel could
// not be established.
type MatrixPoint struct {
	Protocol string
	Policy   string
	Channel  string
	RawKbps  float64
	Accuracy float64
	InfoKbps float64
	Survives bool
	Note     string
}

// matrixSurvival is the raw-bit accuracy above which a channel counts as
// surviving a protocol: well below the live channels' operating
// accuracies (>97%), well above what a partially collapsed band
// structure produces (a 2-bit channel reduced to two distinguishable
// levels tops out near 75%).
const matrixSurvival = 0.9

// MatrixChannels lists the channel implementations the matrix probes:
// binary-state is the paper's coherence-state channel proper (local E vs
// local S — same socket, only the state differs), binary-socket the
// robust cross-socket pair (remote E vs local S, which also leaks
// location), and multibit the 2-bit-symbol channel that needs all four
// latency bands at once.
func MatrixChannels() []string { return []string{"binary-state", "binary-socket", "multibit"} }

// MatrixMetadataChannels lists the metadata channels the matrix probes
// additionally, once per registered replacement policy: lrustate leaks
// through replacement metadata (so its survival is a property of the
// policy), dirtystate through the dirty bit (so its survival is a
// property of the protocol — it dies only without a dirty state).
func MatrixMetadataChannels() []string { return []string{"lrustate", "dirtystate"} }

// MatrixCell measures one (protocol, channel) pair of the matrix.
// Channel establishment failures — calibration unable to find distinct
// latency bands, which is exactly what a leak-free protocol like WT-NA
// produces — are data, not errors: they come back as a dead row with the
// reason in Note. Only genuinely unknown inputs return an error.
func MatrixCell(base machine.Config, proto coherence.Protocol, channel string, payloadBits int, seed uint64) (MatrixPoint, error) {
	spec, err := coherence.SpecFor(proto)
	if err != nil {
		return MatrixPoint{}, err
	}
	pol, err := cache.PolicyFor(base.Replacement)
	if err != nil {
		return MatrixPoint{}, err
	}
	cfg := base
	cfg.Protocol = coherence.Protocol(spec.Name())
	pt := MatrixPoint{Protocol: spec.Name(), Policy: pol.String(), Channel: channel, Note: "-"}
	dead := func(err error) MatrixPoint {
		pt.Note = strings.NewReplacer("\t", " ", "\n", " ").Replace(err.Error())
		return pt
	}

	switch channel {
	case "binary-state", "binary-socket":
		bands, err := covert.Calibrate(cfg, seed+7777, 200, covert.DefaultParams().BandMargin)
		if err != nil {
			return dead(err), nil
		}
		sc := covert.Scenarios[0] // LExclc-LSharedb: only the state differs
		if channel == "binary-socket" {
			sc = covert.Scenarios[3] // RExclc-LSharedb: the robust pair
		}
		ch := covert.Channel{
			Config:      cfg,
			Scenario:    sc,
			Params:      covert.DefaultParams(),
			Mode:        covert.ShareExplicit,
			WorldSeed:   seed + 31,
			PatternSeed: seed,
			Bands:       &bands,
		}
		res, err := ch.Run(PatternBits(seed^0xFACE, payloadBits))
		if err != nil {
			return dead(err), nil
		}
		rep := capacity.Analyze(res.TxBits, res.RxBits, res.RawKbps)
		pt.RawKbps, pt.Accuracy, pt.InfoKbps = res.RawKbps, res.Accuracy, rep.InfoKbps
	case "multibit":
		res, err := Fig11MultiBit(cfg, payloadBits, seed)
		if err != nil {
			return dead(err), nil
		}
		rep := capacity.Analyze(res.TxBits, res.RxBits, res.RawKbps)
		pt.RawKbps, pt.Accuracy, pt.InfoKbps = res.RawKbps, res.Accuracy, rep.InfoKbps
	case "lrustate":
		res, err := covert.LRUStateChannel{Config: cfg, WorldSeed: seed + 31}.Run(PatternBits(seed^0xFACE, payloadBits))
		if err != nil {
			return dead(err), nil
		}
		rep := capacity.Analyze(res.TxBits, res.RxBits, res.RawKbps)
		pt.RawKbps, pt.Accuracy, pt.InfoKbps = res.RawKbps, res.Accuracy, rep.InfoKbps
	case "dirtystate":
		res, err := covert.DirtyStateChannel{Config: cfg, WorldSeed: seed + 31}.Run(PatternBits(seed^0xFACE, payloadBits))
		if err != nil {
			return dead(err), nil
		}
		rep := capacity.Analyze(res.TxBits, res.RxBits, res.RawKbps)
		pt.RawKbps, pt.Accuracy, pt.InfoKbps = res.RawKbps, res.Accuracy, rep.InfoKbps
	default:
		return MatrixPoint{}, fmt.Errorf("protomatrix: unknown channel %q", channel)
	}
	pt.Survives = pt.Accuracy >= matrixSurvival
	return pt, nil
}

// MatrixRow measures every channel for one protocol: the three classic
// channels under the plan's base replacement policy (seed derivations
// unchanged from the original protocol × channel matrix, so those
// numbers are stable), then the metadata channels once per registered
// replacement policy, making the row a policy × channel surface.
func MatrixRow(base machine.Config, proto coherence.Protocol, protoIndex, payloadBits int, seed uint64) ([]MatrixPoint, error) {
	channels := MatrixChannels()
	meta := MatrixMetadataChannels()
	pols := cache.Policies()
	out := make([]MatrixPoint, 0, len(channels)+len(meta)*len(pols))
	for j, chn := range channels {
		pt, err := MatrixCell(base, proto, chn, payloadBits, seed+uint64(protoIndex)*101+uint64(j)*7)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	for j, chn := range meta {
		for q, info := range pols {
			cfg := base
			cfg.Replacement = info.Name
			cellSeed := seed + uint64(protoIndex)*101 + uint64(len(channels)+j)*7 + uint64(q)*1009
			pt, err := MatrixCell(cfg, proto, chn, payloadBits, cellSeed)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}
