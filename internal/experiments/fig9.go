package experiments

import (
	"fmt"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
	"coherentleak/internal/noise"
)

// NoisePoint is one bar of Figure 9: raw-bit accuracy for a scenario
// under a given number of co-located kernel-build threads.
type NoisePoint struct {
	Scenario     string
	NoiseThreads int
	Accuracy     float64
	MeasuredKbps float64
}

// Fig9NoiseLevels are the swept kernel-build thread counts.
func Fig9NoiseLevels() []int { return []int{0, 1, 2, 4, 6, 8} }

// Fig9Noise measures raw-bit accuracy for one scenario across noise
// levels, at the reliable default operating point (the paper runs the
// noise study at a fixed transmission configuration).
func Fig9Noise(cfg machine.Config, sc covert.Scenario, levels []int, payloadBits int, seed uint64) ([]NoisePoint, error) {
	bits := PatternBits(seed^0x99, payloadBits)
	bands, err := covert.Calibrate(cfg, seed+7777, 200, covert.DefaultParams().BandMargin)
	if err != nil {
		return nil, err
	}
	out := make([]NoisePoint, 0, len(levels))
	for i, n := range levels {
		n := n
		ch := &covert.Channel{
			Config:      cfg,
			Scenario:    sc,
			Params:      covert.DefaultParams(),
			Mode:        covert.ShareExplicit,
			WorldSeed:   seed + uint64(i)*67,
			PatternSeed: seed,
			Bands:       &bands,
			PreRun: func(s *covert.Session) {
				if n == 0 {
					return
				}
				if _, err := noise.Attach(s.Kern, noise.DefaultConfig(n)); err != nil {
					panic(err)
				}
				s.OSNoiseProb = noise.CoLocationPressure(s.Kern, n)
			},
		}
		res, err := ch.Run(bits)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s n=%d: %w", sc.Name(), n, err)
		}
		out = append(out, NoisePoint{
			Scenario:     sc.Name(),
			NoiseThreads: n,
			Accuracy:     res.Accuracy,
			MeasuredKbps: res.RawKbps,
		})
	}
	return out, nil
}
