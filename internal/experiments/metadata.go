package experiments

import (
	"coherentleak/internal/cache"
	"coherentleak/internal/covert"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"

	"fmt"
)

// This file registers the two metadata leakage channels from the
// follow-on papers as artifacts: lrustate (replacement-metadata channel,
// Xiong & Szefer) and dirtystate (writeback-latency channel, Cui et
// al.). Both run once per registered replacement policy, because the
// policy is the experiment: lrustate lives or dies by how the policy
// maps touches to victim choice, while dirtystate is policy-blind — the
// flat accuracy row is the control that shows the leak rides on the
// line's dirty bit, not on replacement state.

// LRUStateTrace runs the replacement-metadata channel under the given
// policy and returns the slot trace.
func LRUStateTrace(base machine.Config, policy string, payloadBits int, seed uint64) (*covert.SlotResult, error) {
	cfg := base
	cfg.Replacement = policy
	ch := covert.LRUStateChannel{Config: cfg, WorldSeed: seed + 31}
	return ch.Run(PatternBits(seed^0xFACE, payloadBits))
}

// DirtyStateTrace runs the dirty-state channel under the given policy
// and returns the slot trace.
func DirtyStateTrace(base machine.Config, policy string, payloadBits int, seed uint64) (*covert.SlotResult, error) {
	cfg := base
	cfg.Replacement = policy
	ch := covert.DirtyStateChannel{Config: cfg, WorldSeed: seed + 31}
	return ch.Run(PatternBits(seed^0xFACE, payloadBits))
}

// slotCells builds one cell per registered replacement policy for a
// slotted metadata channel.
func slotCells(p harness.Plan, run func(policy string, payloadBits int, seed uint64) (*covert.SlotResult, error), label string) []harness.Cell {
	pols := cache.Policies()
	cells := make([]harness.Cell, 0, len(pols))
	for i, info := range pols {
		i, name := i, info.Name
		cells = append(cells, harness.Cell{
			Name: name,
			Run: func() (harness.CellOutput, error) {
				res, err := run(name, p.Size(120, 40), p.Seed+uint64(i)*29)
				if err != nil {
					return harness.CellOutput{}, err
				}
				var out harness.CellOutput
				for _, s := range res.Samples {
					out.Rows = append(out.Rows, fmt.Sprintf("%s\t%d\t%d\t%d\t%d",
						name, s.Slot, res.TxBits[s.Slot], s.Bit, s.Latency))
				}
				out.Summary = append(out.Summary, fmt.Sprintf(
					"%s %-9s accuracy=%.1f%% rate=%.0f Kbps",
					label, name, res.Accuracy*100, res.RawKbps))
				return out, nil
			},
		})
	}
	return cells
}

func lrustateArtifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "lrustate",
		Description: "LRU-state channel: bits through LLC replacement metadata only, per replacement policy",
		File:        "lrustate.tsv",
		Header:      "policy\tslot\ttx_bit\trx_bit\tlatency_cycles",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return slotCells(p, func(policy string, bits int, seed uint64) (*covert.SlotResult, error) {
				return LRUStateTrace(p.Cfg, policy, bits, seed)
			}, "lrustate"), nil
		},
	}
}

func dirtystateArtifact() *harness.Artifact {
	return &harness.Artifact{
		Name:        "dirtystate",
		Description: "dirty-state channel: M-vs-clean decoded from flush/writeback latency, per replacement policy",
		File:        "dirtystate.tsv",
		Header:      "policy\tslot\ttx_bit\trx_bit\tflush_latency_cycles",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return slotCells(p, func(policy string, bits int, seed uint64) (*covert.SlotResult, error) {
				return DirtyStateTrace(p.Cfg, policy, bits, seed)
			}, "dirtystate"), nil
		},
	}
}
