package experiments

import (
	"fmt"
	"testing"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
	"coherentleak/internal/noise"
)

// TestDebugNoisyTrace inspects a transmission under 8-thread noise at
// the Figure 10 operating point (trace visible with -v).
func TestDebugNoisyTrace(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cfg := machine.DefaultConfig()
	sc := covert.Scenarios[1] // RExclc-RSharedb
	p := Fig10Params()
	bands, _ := covert.Calibrate(cfg, DefaultSeed+7777, 200, p.BandMargin)
	bits := PatternBits(DefaultSeed^0x88, 528)
	ch := covert.Channel{
		Config: cfg, Scenario: sc, Params: p,
		Mode: covert.ShareExplicit, WorldSeed: DefaultSeed, PatternSeed: DefaultSeed,
		Bands: &bands,
		PreRun: func(s *covert.Session) {
			if _, err := noise.Attach(s.Kern, noise.DefaultConfig(8)); err != nil {
				panic(err)
			}
			s.OSNoiseProb = noise.CoLocationPressure(s.Kern, 8)
			t.Logf("osNoiseProb=%v", s.OSNoiseProb)
		},
	}
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("acc=%v rx=%d bits vs tx=%d", res.Accuracy, len(res.RxBits), len(res.TxBits))
	line := ""
	for i, s := range res.Samples {
		line += fmt.Sprintf("%s%d ", s.Class, s.Latency)
		if (i+1)%20 == 0 {
			t.Log(line)
			line = ""
		}
		if i > 240 {
			break
		}
	}
	t.Log(line)
}
