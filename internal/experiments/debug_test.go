package experiments

import (
	"fmt"
	"testing"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

// TestDebugTrace doubles as a smoke test and an inspection aid: it runs
// one mid-rate transmission and logs the spy's classified reception
// trace (visible with -v), the calibrated bands, and the decode.
func TestDebugTrace(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cfg := machine.DefaultConfig()
	sc := covert.Scenarios[0]
	p := covert.ParamsForRate(cfg, sc, 400)
	t.Logf("params: %+v threshold=%v", p, p.Threshold())
	bands, err := covert.Calibrate(cfg, DefaultSeed+7777, 200, p.BandMargin)
	if err != nil {
		t.Fatal(err)
	}
	for pl, b := range bands.ByPlacement {
		t.Logf("band %v: %v", pl, b)
	}
	t.Logf("dram: %v", bands.DRAM)
	bits := PatternBits(DefaultSeed^0x88, 12)
	ch := &covert.Channel{
		Config: cfg, Scenario: sc, Params: p,
		Mode: covert.ShareExplicit, WorldSeed: DefaultSeed, PatternSeed: DefaultSeed,
		Bands: &bands,
	}
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tx=%v", bits)
	t.Logf("rx=%v acc=%v", res.RxBits, res.Accuracy)
	line := ""
	for i, s := range res.Samples {
		line += fmt.Sprintf("%s%d ", s.Class, s.Latency)
		if (i+1)%16 == 0 {
			t.Log(line)
			line = ""
		}
	}
	t.Log(line)
}
