package experiments

import (
	"fmt"

	"coherentleak/internal/capacity"
	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
	"coherentleak/internal/noise"
)

// CapacityPoint quantifies the §II TCSEC discussion for one operating
// point: the usable information rate after accounting for the measured
// error structure, and its Orange Book classification. (TCSEC calls
// ≥100 bits/sec "high bandwidth"; the paper's channels exceed that by
// three to four orders of magnitude.)
type CapacityPoint struct {
	Scenario     string
	TargetKbps   float64
	NoiseThreads int
	RawKbps      float64
	FlipRate     float64
	LostRate     float64
	ExtraRate    float64
	InfoKbps     float64
	TCSEC        string
}

// CapacityTable measures information rates for one scenario across a
// rate x noise grid.
func CapacityTable(cfg machine.Config, sc covert.Scenario, targets []float64, noiseLevels []int, payloadBits int, seed uint64) ([]CapacityPoint, error) {
	var out []CapacityPoint
	for i, target := range targets {
		pts, err := CapacityColumn(cfg, sc, target, i, noiseLevels, payloadBits, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

// CapacityColumn measures one target rate's column of the capacity grid
// (every noise level at that rate). targetIndex is the rate's position
// in the swept targets; it keeps the per-cell world seeds identical to
// the whole-grid sweep, so decomposed runs reproduce the same numbers.
func CapacityColumn(cfg machine.Config, sc covert.Scenario, target float64, targetIndex int, noiseLevels []int, payloadBits int, seed uint64) ([]CapacityPoint, error) {
	bits := PatternBits(seed^0xCA9A, payloadBits)
	bands, err := covert.Calibrate(cfg, seed+7777, 200, covert.DefaultParams().BandMargin)
	if err != nil {
		return nil, err
	}
	out := make([]CapacityPoint, 0, len(noiseLevels))
	for j, n := range noiseLevels {
		ch := covert.Channel{
			Config:      cfg,
			Scenario:    sc,
			Params:      covert.ParamsForRate(cfg, sc, target),
			Mode:        covert.ShareExplicit,
			WorldSeed:   seed + uint64(targetIndex)*97 + uint64(j)*13,
			PatternSeed: seed,
			Bands:       &bands,
			PreRun: func(s *covert.Session) {
				if n == 0 {
					return
				}
				if _, err := noise.Attach(s.Kern, noise.DefaultConfig(n)); err != nil {
					panic(err)
				}
				s.OSNoiseProb = noise.CoLocationPressure(s.Kern, n)
			},
		}
		res, err := ch.Run(bits)
		if err != nil {
			return nil, fmt.Errorf("capacity %s @%v n=%d: %w", sc.Name(), target, n, err)
		}
		rep := capacity.Analyze(res.TxBits, res.RxBits, res.RawKbps)
		flip, lost, extra := rep.Errors.Rates()
		out = append(out, CapacityPoint{
			Scenario:     sc.Name(),
			TargetKbps:   target,
			NoiseThreads: n,
			RawKbps:      res.RawKbps,
			FlipRate:     flip,
			LostRate:     lost,
			ExtraRate:    extra,
			InfoKbps:     rep.InfoKbps,
			TCSEC:        string(rep.TCSEC),
		})
	}
	return out, nil
}
