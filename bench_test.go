package coherentleak

// Benchmark harness: the paper artifacts are regenerated through the
// same internal/harness Runner the cmd/experiments binary drives (quick
// sizing, one sub-benchmark per registered artifact, plus a worker-pool
// scaling bench), alongside micro-benchmarks of the substrates and
// ablation benches for the design choices called out in DESIGN.md §5.
//
// Run: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"coherentleak/internal/coherence"
	"coherentleak/internal/covert"
	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// --- artifact benchmarks (registry-driven) ---------------------------

func quickPlan() harness.Plan {
	return harness.Plan{
		Cfg:    machine.DefaultConfig(),
		Seed:   experiments.DefaultSeed,
		Sizing: harness.SizingQuick,
	}
}

func runArtifacts(b *testing.B, names []string, parallel int, kern string) *harness.RunReport {
	b.Helper()
	arts, err := experiments.Artifacts().Select(names)
	if err != nil {
		b.Fatal(err)
	}
	plan := quickPlan()
	plan.Cfg.Kernel = kern
	r := &harness.Runner{Parallel: parallel}
	rep, err := r.Run(context.Background(), plan, arts)
	if err != nil {
		b.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkArtifact regenerates each registered paper artifact at quick
// sizing through the harness Runner — the same engine, registry and
// cell decomposition cmd/experiments uses — once per access-stream
// kernel. The interp/compiled pair per artifact is what `make
// bench-gate` compares: both produce byte-identical TSVs, so any timing
// split is pure kernel overhead.
func BenchmarkArtifact(b *testing.B) {
	for _, name := range experiments.Artifacts().Names() {
		for _, kern := range []string{machine.KernelInterp, machine.KernelCompiled} {
			b.Run(name+"/"+kern, func(b *testing.B) {
				var rows int
				for i := 0; i < b.N; i++ {
					rep := runArtifacts(b, []string{name}, 1, kern)
					rows = len(rep.Results[0].Rows)
				}
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// BenchmarkRunnerParallel measures worker-pool scaling over a mixed
// artifact set (multi-cell, varied cell cost).
func BenchmarkRunnerParallel(b *testing.B) {
	names := []string{"fig2", "fig9", "capacity"}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runArtifacts(b, names, par, machine.KernelInterp)
			}
		})
	}
}

// --- ablation benchmarks (DESIGN.md §5) ------------------------------

// BenchmarkAblationProtocol compares the channel across MESI, MESIF and
// MOESI — the §VIII-E claim that the findings extend across protocols.
func BenchmarkAblationProtocol(b *testing.B) {
	bits := experiments.PatternBits(3, 40)
	for _, p := range []coherence.Protocol{coherence.MESI, coherence.MESIF, coherence.MOESI} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				ch := covert.NewChannel(covert.Scenarios[0])
				ch.Config.Protocol = p
				ch.WorldSeed = uint64(i) + 7
				res, err := ch.Run(bits)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accuracy
			}
			b.ReportMetric(acc*100, "accuracy%")
		})
	}
}

// BenchmarkAblationInclusion compares inclusive vs non-inclusive LLCs —
// §VIII-E: "changing the cache inclusion property alone may not be
// sufficient to eliminate the timing channels".
func BenchmarkAblationInclusion(b *testing.B) {
	bits := experiments.PatternBits(5, 40)
	for _, inclusive := range []bool{true, false} {
		inclusive := inclusive
		name := "inclusive"
		if !inclusive {
			name = "non-inclusive"
		}
		b.Run(name, func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				ch := covert.NewChannel(covert.Scenarios[0])
				ch.Config.InclusiveLLC = inclusive
				ch.WorldSeed = uint64(i) + 11
				res, err := ch.Run(bits)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accuracy
			}
			b.ReportMetric(acc*100, "accuracy%")
		})
	}
}

// BenchmarkAblationCoherenceKind compares directory (core-valid bits) vs
// snoop-bus coherence — §VIII-E's claim that the findings extend across
// protocol classes.
func BenchmarkAblationCoherenceKind(b *testing.B) {
	bits := experiments.PatternBits(15, 40)
	for _, snoop := range []bool{false, true} {
		snoop := snoop
		name := "directory"
		if snoop {
			name = "snoop-bus"
		}
		b.Run(name, func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				ch := covert.NewChannel(covert.Scenarios[0])
				ch.Config.SnoopBus = snoop
				ch.WorldSeed = uint64(i) + 17
				res, err := ch.Run(bits)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accuracy
			}
			b.ReportMetric(acc*100, "accuracy%")
		})
	}
}

// BenchmarkAblationExclusiveLLC contrasts an E/S scenario (dies) with a
// location scenario (survives) on a victim-cache LLC.
func BenchmarkAblationExclusiveLLC(b *testing.B) {
	bits := experiments.PatternBits(19, 40)
	for _, name := range []string{"LExclc-LSharedb", "RSharedc-LSharedb"} {
		name := name
		b.Run(name, func(b *testing.B) {
			sc, err := covert.ScenarioByName(name)
			if err != nil {
				b.Fatal(err)
			}
			acc := 0.0
			for i := 0; i < b.N; i++ {
				ch := covert.NewChannel(sc)
				ch.Config.InclusiveLLC = false
				ch.Config.ExclusiveLLC = true
				ch.WorldSeed = uint64(i) + 23
				res, err := ch.Run(bits)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accuracy
			}
			b.ReportMetric(acc*100, "accuracy%")
		})
	}
}

// BenchmarkAblationJitter sweeps the base measurement jitter and reports
// channel accuracy — band separability vs noise width.
func BenchmarkAblationJitter(b *testing.B) {
	bits := experiments.PatternBits(9, 40)
	for _, j := range []int64{2, 5, 10, 20} {
		j := j
		b.Run(jitterName(j), func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				ch := covert.NewChannel(covert.Scenarios[0])
				ch.Config.Latencies.Jitter = j
				ch.WorldSeed = uint64(i) + 13
				res, err := ch.Run(bits)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accuracy
			}
			b.ReportMetric(acc*100, "accuracy%")
		})
	}
}

func jitterName(j int64) string {
	return "jitter" + string(rune('0'+j/10)) + string(rune('0'+j%10))
}

// BenchmarkAblationProbeMethod compares clflush against §VI-B's
// eviction-of-all-ways alternative (slower, no flush instruction needed).
func BenchmarkAblationProbeMethod(b *testing.B) {
	bits := experiments.PatternBits(27, 40)
	for _, method := range []covert.ProbeMethod{covert.ProbeClflush, covert.ProbeEviction} {
		method := method
		b.Run(method.String(), func(b *testing.B) {
			rate := 0.0
			for i := 0; i < b.N; i++ {
				ch := covert.NewChannel(covert.Scenarios[0])
				p := covert.DefaultParams()
				p.Probe = method
				ch.Params = p
				ch.WorldSeed = uint64(i) + 31
				res, err := ch.Run(bits)
				if err != nil {
					b.Fatal(err)
				}
				if res.Accuracy < 0.95 {
					b.Fatalf("accuracy %v", res.Accuracy)
				}
				rate = res.RawKbps
			}
			b.ReportMetric(rate, "Kbps")
		})
	}
}

// BenchmarkExtensionParallelLanes measures the multi-lane bandwidth
// extension.
func BenchmarkExtensionParallelLanes(b *testing.B) {
	bits := experiments.PatternBits(29, 120)
	for _, lanes := range []int{1, 2, 4, 8} {
		lanes := lanes
		b.Run(laneName(lanes), func(b *testing.B) {
			rate, acc := 0.0, 0.0
			for i := 0; i < b.N; i++ {
				ch := covert.NewParallelChannel(covert.Scenarios[0], lanes)
				ch.WorldSeed = uint64(i) + 37
				res, err := ch.Run(bits)
				if err != nil {
					b.Fatal(err)
				}
				rate, acc = res.RawKbps, res.Accuracy
			}
			b.ReportMetric(rate, "Kbps")
			b.ReportMetric(acc*100, "accuracy%")
		})
	}
}

func laneName(n int) string {
	return "lanes" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// BenchmarkAblationPrefetcher measures the channel with the next-line
// prefetcher enabled.
func BenchmarkAblationPrefetcher(b *testing.B) {
	bits := experiments.PatternBits(35, 40)
	for _, pf := range []bool{false, true} {
		pf := pf
		name := "off"
		if pf {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				ch := covert.NewChannel(covert.Scenarios[0])
				ch.Config.NextLinePrefetch = pf
				ch.WorldSeed = uint64(i) + 41
				res, err := ch.Run(bits)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accuracy
			}
			b.ReportMetric(acc*100, "accuracy%")
		})
	}
}

// --- substrate micro-benchmarks --------------------------------------

// BenchmarkMachineLoadL1 measures the simulator's hot path: an L1 hit.
func BenchmarkMachineLoadL1(b *testing.B) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	m := machine.New(w, machine.DefaultConfig())
	done := false
	w.Spawn("bench", func(t *sim.Thread) {
		m.Load(t, 0, 0x1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Load(t, 0, 0x1000)
		}
		done = true
	})
	if err := w.RunUntil(func() bool { return done }); err != nil {
		b.Fatal(err)
	}
	w.Drain()
}

// BenchmarkMachineFlushReload measures one spy probe period.
func BenchmarkMachineFlushReload(b *testing.B) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	m := machine.New(w, machine.DefaultConfig())
	done := false
	w.Spawn("bench", func(t *sim.Thread) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Flush(t, 0, 0x1000)
			m.Load(t, 1, 0x1000)
			m.Load(t, 0, 0x1000)
		}
		done = true
	})
	if err := w.RunUntil(func() bool { return done }); err != nil {
		b.Fatal(err)
	}
	w.Drain()
}

// BenchmarkKSMScan measures a deduplication pass over 64 process pages.
func BenchmarkKSMScan(b *testing.B) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	k := kernel.New(machine.New(w, machine.DefaultConfig()), 0)
	var pattern [kernel.PageSize]byte
	for p := 0; p < 8; p++ {
		proc := k.NewProcess("p")
		va := proc.MustMmap(8)
		for pg := uint64(0); pg < 8; pg++ {
			pattern[0] = byte(pg) // 8 distinct contents, repeated per process
			if err := proc.WriteBytes(va+pg*kernel.PageSize, pattern[:]); err != nil {
				b.Fatal(err)
			}
		}
		if err := proc.Madvise(va, 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.KSM.Scan()
	}
}

// BenchmarkCalibrate measures full band calibration.
func BenchmarkCalibrate(b *testing.B) {
	cfg := machine.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := covert.Calibrate(cfg, uint64(i), 100, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeakSearch regenerates the abstract's headline rates (700
// Kbps binary / 1.1 Mbps multi-bit) on a reduced payload — kept as a
// direct call (not registry-driven) because it sweeps a smaller payload
// than the peaks artifact's quick sizing.
func BenchmarkPeakSearch(b *testing.B) {
	cfg := machine.DefaultConfig()
	var pk *experiments.PeakRates
	var err error
	for i := 0; i < b.N; i++ {
		pk, err = experiments.FindPeakRates(cfg, 0.97, 100, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pk.BinaryKbps, "binKbps")
	b.ReportMetric(pk.MultiBitKbps, "mbKbps")
}
