// Package coherentleak is a library reproduction of "Are Coherence
// Protocol States Vulnerable to Information Leakage?" (Yao, Doroslovački,
// Venkataramani — HPCA 2018).
//
// It bundles a deterministic cycle-level simulator of a dual-socket
// multi-core machine (private L1/L2 caches, inclusive shared LLCs with
// core-valid-bit directories, MESI/MESIF/MOESI coherence, QPI-style
// inter-socket links), an OS substrate with KSM page deduplication, and
// the paper's contribution on top: covert timing channels that modulate
// the (cache location, coherence state) of a shared read-only block.
//
// # Quick start
//
//	ch := coherentleak.NewChannel(coherentleak.Scenarios[0])
//	res, err := ch.Run(coherentleak.TextToBits("secret"))
//	// res.RxBits, res.Accuracy, res.RawKbps ...
//
// The package is a facade: it re-exports the stable surface of the
// internal packages so applications depend on one import. See DESIGN.md
// for the system inventory and EXPERIMENTS.md for the paper-vs-measured
// record.
package coherentleak

import (
	"coherentleak/internal/capacity"
	"coherentleak/internal/covert"
	"coherentleak/internal/ecc"
	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/mitigate"
	"coherentleak/internal/noise"
	"coherentleak/internal/replay"
	"coherentleak/internal/sim"
	"coherentleak/internal/stats"
	"coherentleak/internal/trace"
)

// Simulation kernel.
type (
	// World is the deterministic discrete-event simulation kernel.
	World = sim.World
	// Thread is a simulated hardware thread.
	Thread = sim.Thread
	// Cycles is a duration or instant in simulated CPU cycles.
	Cycles = sim.Cycles
	// WorldConfig parameterizes a World.
	WorldConfig = sim.Config
)

// NewWorld returns an empty simulation world.
func NewWorld(cfg WorldConfig) *World { return sim.NewWorld(cfg) }

// Machine layer.
type (
	// Machine is the simulated multi-socket testbed.
	Machine = machine.Machine
	// MachineConfig describes its topology, caches and latencies.
	MachineConfig = machine.Config
	// Latencies are the component service times.
	Latencies = machine.Latencies
	// Mitigations are the §VIII-E defensive hardware options.
	Mitigations = machine.Mitigations
	// Access is one timed memory operation's outcome.
	Access = machine.Access
	// Path identifies the service path of a load.
	Path = machine.Path
)

// Service paths (latency classes).
const (
	PathL1            = machine.PathL1
	PathL2            = machine.PathL2
	PathLocalLLC      = machine.PathLocalLLC
	PathLocalForward  = machine.PathLocalForward
	PathRemoteLLC     = machine.PathRemoteLLC
	PathRemoteForward = machine.PathRemoteForward
	PathDRAM          = machine.PathDRAM
)

// DefaultMachineConfig returns the paper's testbed: a 2-socket 12-core
// Xeon X5650 class machine at 2.67 GHz.
func DefaultMachineConfig() MachineConfig { return machine.DefaultConfig() }

// NewMachine builds a machine inside world.
func NewMachine(w *World, cfg MachineConfig) *Machine { return machine.New(w, cfg) }

// OS layer.
type (
	// Kernel is the OS substrate: processes, virtual memory, KSM.
	Kernel = kernel.Kernel
	// Process is a simulated OS process.
	Process = kernel.Process
	// OSThread is a process thread pinned to a core.
	OSThread = kernel.Thread
)

// NewKernel wraps a machine with the OS substrate; totalFrames bounds
// physical memory (0 = unbounded).
func NewKernel(m *Machine, totalFrames int) *Kernel { return kernel.New(m, totalFrames) }

// PageSize is the virtual/physical page size in bytes.
const PageSize = kernel.PageSize

// PagePatternInto fills buf with the deterministic pseudo-random pattern
// the trojan and spy agree on for KSM-based page sharing.
func PagePatternInto(seed uint64, buf []byte) { covert.PagePattern(seed, buf) }

// Covert channel (the paper's contribution).
type (
	// Channel is a configured binary covert timing channel.
	Channel = covert.Channel
	// Scenario is one Table I (communication, boundary) configuration.
	Scenario = covert.Scenario
	// Placement is a (location, coherence state) combination pair.
	Placement = covert.Placement
	// Params are the transmission knobs of Algorithms 1-2.
	Params = covert.Params
	// Result is a transmission outcome.
	Result = covert.Result
	// Sample is one timed load observed by the spy.
	Sample = covert.Sample
	// Bands is the spy's calibrated latency-band table.
	Bands = covert.Bands
	// Session is a constructed attack environment.
	Session = covert.Session
	// SharingMode selects KSM or explicit page sharing.
	SharingMode = covert.SharingMode
	// MultiBitChannel is the §VIII-D 2-bit-symbol channel.
	MultiBitChannel = covert.MultiBitChannel
	// MultiBitParams tune it.
	MultiBitParams = covert.MultiBitParams
	// MultiBitResult is its outcome.
	MultiBitResult = covert.MultiBitResult
	// ParallelChannel stripes the payload across several cache lines of
	// the shared page (a bandwidth extension beyond the paper).
	ParallelChannel = covert.ParallelChannel
	// ParallelResult is its outcome.
	ParallelResult = covert.ParallelResult
	// ProbeMethod selects clflush or conflict-set eviction probing.
	ProbeMethod = covert.ProbeMethod
)

// Probe methods (§VI-B: "through clflush or an equivalent instruction,
// or through eviction of all the ways in the set").
const (
	// ProbeClflush is the flush-instruction probe.
	ProbeClflush = covert.ProbeClflush
	// ProbeEviction evicts B by traversing its LLC conflict set.
	ProbeEviction = covert.ProbeEviction
)

// Placements.
var (
	// LExcl is the local-socket Exclusive-state placement.
	LExcl = covert.LExcl
	// LShared is the local-socket Shared-state placement.
	LShared = covert.LShared
	// RExcl is the remote-socket Exclusive-state placement.
	RExcl = covert.RExcl
	// RShared is the remote-socket Shared-state placement.
	RShared = covert.RShared
)

// Sharing modes.
const (
	// ShareKSM creates the shared page implicitly via page deduplication.
	ShareKSM = covert.ShareKSM
	// ShareExplicit maps a read-only page into both processes directly.
	ShareExplicit = covert.ShareExplicit
)

// Scenarios are the six Table I attack configurations.
var Scenarios = covert.Scenarios

// ScenarioByName finds a scenario by its paper notation, e.g.
// "RExclc-LSharedb".
func ScenarioByName(name string) (Scenario, error) { return covert.ScenarioByName(name) }

// ScenarioNames lists the six names in Table I order.
func ScenarioNames() []string { return covert.ScenarioNames() }

// NewChannel returns a channel on the default testbed with reliable
// parameters and KSM sharing.
func NewChannel(sc Scenario) *Channel { return covert.NewChannel(sc) }

// NewMultiBitChannel returns the default-configured 2-bit channel.
func NewMultiBitChannel() *MultiBitChannel { return covert.NewMultiBitChannel() }

// NewParallelChannel returns a multi-lane channel on the default testbed.
func NewParallelChannel(sc Scenario, lanes int) *ParallelChannel {
	return covert.NewParallelChannel(sc, lanes)
}

// DefaultParams returns the reliable binary operating point.
func DefaultParams() Params { return covert.DefaultParams() }

// DefaultMultiBitParams returns the reliable 2-bit-symbol operating point.
func DefaultMultiBitParams() MultiBitParams { return covert.DefaultMultiBitParams() }

// MultiBitParamsForRate solves the 2-bit channel's knobs for a target
// bit rate.
func MultiBitParamsForRate(cfg MachineConfig, targetKbps float64) MultiBitParams {
	return covert.MultiBitParamsForRate(cfg, targetKbps)
}

// ParamsForRate derives parameters aiming at targetKbps for a scenario.
func ParamsForRate(cfg MachineConfig, sc Scenario, targetKbps float64) Params {
	return covert.ParamsForRate(cfg, sc, targetKbps)
}

// Calibrate measures the latency bands the spy classifies against.
func Calibrate(cfg MachineConfig, seed uint64, samplesPerBand int, margin float64) (Bands, error) {
	return covert.Calibrate(cfg, seed, samplesPerBand, margin)
}

// NewSession builds an attack environment without running a transmission
// (for custom experiments).
func NewSession(cfg MachineConfig, worldSeed, patternSeed uint64, mode SharingMode) (*Session, error) {
	return covert.NewSession(cfg, worldSeed, patternSeed, mode)
}

// TextToBits expands a string to bits, MSB first.
func TextToBits(msg string) []byte { return covert.TextToBits(msg) }

// BitsToText packs bits (MSB first) into a string.
func BitsToText(bits []byte) string { return covert.BitsToText(bits) }

// Error handling (§VIII-C).
type (
	// ReliableProtocol is the parity + NACK retransmission scheme.
	ReliableProtocol = ecc.Protocol
	// ReliableResult reports a reliable transfer.
	ReliableResult = ecc.Result
	// FECProtocol is the Hamming(7,4)+interleaver forward-error-
	// correction alternative (no reverse channel).
	FECProtocol = ecc.FECProtocol
	// FECResult reports an FEC transfer.
	FECResult = ecc.FECResult
)

// NewReliableProtocol wraps a channel with packet parity and
// retransmission.
func NewReliableProtocol(ch Channel) *ReliableProtocol { return ecc.NewProtocol(ch) }

// NewFECProtocol wraps a channel with forward error correction.
func NewFECProtocol(ch Channel) *FECProtocol { return ecc.NewFECProtocol(ch) }

// Noise workload (§VIII-C).
type (
	// NoiseConfig tunes the kernel-build-like background workload.
	NoiseConfig = noise.Config
	// NoiseWorkload is a running set of noise threads.
	NoiseWorkload = noise.Workload
)

// DefaultNoiseConfig returns a kcbench-like intensity for n threads.
func DefaultNoiseConfig(threads int) NoiseConfig { return noise.DefaultConfig(threads) }

// AttachNoise spawns the workload's threads in kern.
func AttachNoise(kern *Kernel, cfg NoiseConfig) (*NoiseWorkload, error) {
	return noise.Attach(kern, cfg)
}

// CoLocationPressure returns the OS interruption rate attack threads
// suffer at a given noise thread count.
func CoLocationPressure(kern *Kernel, threads int) float64 {
	return noise.CoLocationPressure(kern, threads)
}

// Defenses (§VIII-E).
type (
	// Monitor is the targeted-noise-injection defense.
	Monitor = mitigate.Monitor
	// MonitorConfig tunes it.
	MonitorConfig = mitigate.MonitorConfig
	// KSMGuard un-merges suspiciously probed deduplicated pages.
	KSMGuard = mitigate.KSMGuard
	// KSMGuardConfig tunes it.
	KSMGuardConfig = mitigate.KSMGuardConfig
)

// AttachMonitor starts the monitor defense over the given physical lines.
func AttachMonitor(kern *Kernel, cfg MonitorConfig, lines []uint64) *Monitor {
	return mitigate.AttachMonitor(kern, cfg, lines)
}

// AttachKSMGuard starts the un-merge defense daemon.
func AttachKSMGuard(kern *Kernel, cfg KSMGuardConfig) *KSMGuard {
	return mitigate.AttachKSMGuard(kern, cfg)
}

// DefaultMonitorConfig returns the monitor defense's defaults.
func DefaultMonitorConfig() MonitorConfig { return mitigate.DefaultMonitorConfig() }

// DefaultKSMGuardConfig returns the KSM guard's defaults.
func DefaultKSMGuardConfig() KSMGuardConfig { return mitigate.DefaultKSMGuardConfig() }

// HardwareFix returns cfg with the E->M notification change enabled.
func HardwareFix(cfg MachineConfig) MachineConfig { return mitigate.HardwareFix(cfg) }

// TimingObfuscator returns cfg with socket-latency equalization enabled.
func TimingObfuscator(cfg MachineConfig) MachineConfig { return mitigate.TimingObfuscator(cfg) }

// FullHardwareDefense combines both hardware changes.
func FullHardwareDefense(cfg MachineConfig) MachineConfig {
	return mitigate.FullHardwareDefense(cfg)
}

// AttackLines returns the line addresses of a session's shared page (the
// monitor defense's watch list).
func AttackLines(s *Session) []uint64 { return mitigate.AttackLines(s) }

// Observability and analysis.
type (
	// TraceRecorder captures the machine's memory operations.
	TraceRecorder = trace.Recorder
	// TraceFilter selects which events are kept.
	TraceFilter = trace.Filter
	// AccessEvent is one recorded memory operation.
	AccessEvent = machine.AccessEvent
	// CapacityReport is the information-theoretic quality of a
	// transmission.
	CapacityReport = capacity.Report
	// TCSECClass is the Orange Book bandwidth category (§II).
	TCSECClass = capacity.TCSECClass
	// ReplayRecord is the versioned JSON archive of a transmission.
	ReplayRecord = replay.Record
)

// ArchiveResult converts a transmission result for JSON persistence.
func ArchiveResult(res *Result, includeSamples bool) *ReplayRecord {
	return replay.FromResult(res, includeSamples)
}

// AttachTrace records the most recent matching operations on a machine.
func AttachTrace(m *Machine, cap int, f TraceFilter) *TraceRecorder {
	return trace.Attach(m, cap, f)
}

// NewTraceFilter returns a match-all filter.
func NewTraceFilter() TraceFilter { return trace.NewFilter() }

// AnalyzeCapacity estimates a transmission's usable information rate and
// TCSEC class from its bits and raw rate.
func AnalyzeCapacity(want, got []byte, rawKbps float64) CapacityReport {
	return capacity.Analyze(want, got, rawKbps)
}

// Statistics helpers.
type (
	// Band is a calibrated latency interval.
	Band = stats.Band
	// CDFPoint is one point of an empirical CDF.
	CDFPoint = stats.CDFPoint
	// Summary describes a latency sample.
	Summary = stats.Summary
)

// Accuracy returns alignment-aware raw-bit accuracy between transmitted
// and received bit strings.
func Accuracy(want, got []byte) float64 { return stats.Accuracy(want, got) }
